//! Property: promoting snapshots from per-batch to cross-batch via
//! the [`SessionCache`] is invisible in results. For random circuit
//! families, the fingerprint of a pooled run is identical whether the
//! session is cold (no snapshot), warm (cached snapshot), or
//! *re-frozen* — evicted by LRU pressure and rebuilt from scratch —
//! because a snapshot is a pure function of (options, circuit) and
//! layering over it is bitwise-neutral (the PR 7 contract).

use std::sync::Arc;

use approxdd_circuit::generators;
use approxdd_exec::{BuildPool, PoolJob};
use approxdd_server::{family_hash, SessionCache};
use approxdd_sim::{Simulator, SimulatorBuilder, Strategy};
use proptest::prelude::*;

fn template(seed: u64, workers: usize) -> SimulatorBuilder {
    Simulator::builder()
        .seed(seed)
        .workers(workers)
        .share_snapshot(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warm_cold_and_refrozen_sessions_fingerprint_identically(
        n in 3usize..6,
        depth in 4usize..9,
        seed in 0u64..500,
        workers in 1usize..4
    ) {
        let circuit = generators::random_circuit(n, depth, seed);
        let other = generators::qft(n); // a different family, for eviction pressure
        let builder = template(seed, workers);
        let pool = builder.clone().build_pool();
        let job = || {
            vec![PoolJob::new(circuit.clone())
                .shots(64)
                .strategy(Strategy::memory_driven_table1(48, 0.9))]
        };
        let fingerprint = |results: Vec<Result<approxdd_exec::PoolOutcome, _>>| {
            results
                .into_iter()
                .next()
                .expect("one result")
                .expect("job succeeds")
                .fingerprint()
        };

        // Cold: no snapshot at all.
        let cold = fingerprint(pool.run_jobs_with_snapshot(job(), None));

        // Warm: first request freezes and caches, second hits.
        let mut cache = SessionCache::new(1);
        let family = family_hash(&circuit);
        prop_assert!(cache.get(family).is_none());
        let frozen = Arc::new(builder.build_snapshot([&circuit]).expect("freeze"));
        cache.insert(family, frozen);
        let hit = cache.get(family).expect("warm hit");
        let warm = fingerprint(pool.run_jobs_with_snapshot(job(), Some(hit)));
        prop_assert_eq!(cold, warm, "warm must equal cold");

        // Evict by caching a different family (capacity 1), then
        // re-freeze the original and run again: the rebuilt frozen
        // tier must pin the same canonicalization history.
        let other_frozen = Arc::new(builder.build_snapshot([&other]).expect("freeze other"));
        cache.insert(family_hash(&other), other_frozen);
        prop_assert!(cache.get(family).is_none(), "LRU must have evicted the family");
        let refrozen = Arc::new(builder.build_snapshot([&circuit]).expect("re-freeze"));
        let canonical = cache.insert(family, refrozen);
        let rewarm = fingerprint(pool.run_jobs_with_snapshot(job(), Some(canonical)));
        prop_assert_eq!(cold, rewarm, "re-frozen must equal cold");

        let stats = cache.stats();
        // Two evictions in a capacity-1 cache: `other` pushed the
        // family out, and re-caching the family pushed `other` out.
        prop_assert_eq!(stats.evictions, 2);
        prop_assert!(stats.hits >= 1);
    }
}

//! Prometheus text exposition (format version 0.0.4).
//!
//! Hand-rolled like the workspace's JSON writer: the output is a plain
//! string, one metric per line, `# TYPE` comments per family. Names
//! and label names are sanitized to the Prometheus grammar and label
//! values are backslash-escaped, so arbitrary registered names (e.g. a
//! route path used as a label) cannot corrupt the exposition.

use crate::metrics::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use std::fmt::Write;

/// Maps `name` onto the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` by replacing invalid characters with
/// `_` (and prefixing `_` if the first character is a digit).
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    sanitize(name, true)
}

/// Maps `name` onto the label-name grammar `[a-zA-Z_][a-zA-Z0-9_]*`
/// (like [`sanitize_metric_name`] but `:` is not allowed).
#[must_use]
pub fn sanitize_label_name(name: &str) -> String {
    sanitize(name, false)
}

fn sanitize(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphabetic()
            || c == '_'
            || (allow_colon && c == ':')
            || (i > 0 && c.is_ascii_digit());
        if c.is_ascii_digit() && i == 0 {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for `name{key="value"}` position: backslash,
/// double quote and newline are backslash-escaped.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as Prometheus text exposition.
#[must_use]
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<(String, &'static str)> = None;
    for entry in &snapshot.entries {
        let name = sanitize_metric_name(&entry.name);
        let kind = match &entry.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if last_family.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name.as_str(), kind)) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_family = Some((name.clone(), kind));
        }
        match &entry.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let labels = render_labels(&entry.labels, None);
                let _ = writeln!(out, "{name}{labels} {v}");
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &name, &entry.labels, h),
        }
    }
    out
}

/// Emits the `_bucket`/`_sum`/`_count` series of one histogram. Empty
/// buckets are skipped (the `le` bounds need not be dense), but the
/// mandatory `+Inf` bucket always appears and cumulative counts stay
/// non-decreasing.
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    let last = h.buckets.len() - 1;
    for (i, &bucket) in h.buckets.iter().enumerate() {
        cumulative = cumulative.wrapping_add(bucket);
        if bucket == 0 && i != last {
            continue;
        }
        let le = if i == last {
            "+Inf".to_string()
        } else {
            // Bucket i holds values of bit length i: upper bound 2^i - 1.
            ((1u128 << i) - 1).to_string()
        };
        let labels = render_labels(labels, Some(&le));
        let _ = writeln!(out, "{name}_bucket{labels} {cumulative}");
    }
    let plain = render_labels(labels, None);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            sanitize_label_name(k),
            escape_label_value(v)
        );
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("dd.apply-time"), "dd_apply_time");
        assert_eq!(sanitize_metric_name("0weird"), "_0weird");
        assert_eq!(sanitize_metric_name("ok:name_9"), "ok:name_9");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("a:b"), "a_b");
        assert_eq!(sanitize_label_name("phase"), "phase");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn renders_counters_gauges_and_type_lines() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("reqs_total", &[("route", "/jobs")])
            .add(2);
        registry
            .counter_with("reqs_total", &[("route", "/stats")])
            .inc();
        registry.gauge("queue_depth").set(4);
        let text = registry.render_prometheus();
        // One TYPE line per family even with two label sets.
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert!(text.contains("reqs_total{route=\"/jobs\"} 2"));
        assert!(text.contains("reqs_total{route=\"/stats\"} 1"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 4"));
    }

    #[test]
    fn renders_histogram_cumulative_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with("lat", &[("phase", "x")]);
        h.observe(0);
        h.observe(1);
        h.observe(5); // bucket 3 (le 7)
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{phase=\"x\",le=\"0\"} 1"));
        assert!(text.contains("lat_bucket{phase=\"x\",le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{phase=\"x\",le=\"7\"} 3"));
        assert!(text.contains("lat_bucket{phase=\"x\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum{phase=\"x\"} 6"));
        assert!(text.contains("lat_count{phase=\"x\"} 3"));
        // Empty intermediate buckets are skipped.
        assert!(!text.contains("le=\"3\""));
    }

    #[test]
    fn invalid_name_cannot_corrupt_exposition() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("bad name\n# TYPE", &[("k\"ey", "v\"al\nue")])
            .inc();
        let text = registry.render_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE") || line.starts_with("bad_name"),
                "unexpected line: {line}"
            );
        }
        assert!(text.contains("bad_name___TYPE{k_ey=\"v\\\"al\\nue\"} 1"));
    }
}

//! The registry and its three metric kinds.
//!
//! All values live in relaxed [`AtomicU64`]s: recording from pool
//! worker threads is lock-free and never synchronizes simulation work.
//! The registry itself is a mutex-guarded sorted map used only on the
//! (cold) registration and snapshot paths; hot sites hold the `Arc`
//! returned at registration.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::prometheus;

/// Number of histogram buckets: one for zero plus one per bit length
/// of a `u64` value (see [`Histogram::bucket_index`]).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that is set to the latest observation (queue
/// depth, alive nodes, worker count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `value` if it is larger (high-water marks).
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log₂ histogram over `u64` observations.
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds values
/// of bit length `i`, i.e. the range `[2^(i-1), 2^i - 1]`. Every
/// `u64` maps to one of the [`HISTOGRAM_BUCKETS`] buckets, so the
/// Prometheus rendering's last finite upper bound is `2^63 - 1` and
/// `+Inf` absorbs the top bit-length. Durations are recorded in
/// nanoseconds via [`Histogram::observe_duration`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index `value` falls into: `0` for zero, otherwise the
    /// bit length of `value` (so `1 → 1`, `2..=3 → 2`, `4..=7 → 3`,
    /// `2^k..=2^(k+1)-1 → k+1`, `u64::MAX → 64`).
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at
    /// `u64::MAX` — ~584 years).
    pub fn observe_duration(&self, elapsed: Duration) {
        self.observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket (non-cumulative) observation counts, one per
    /// [`HISTOGRAM_BUCKETS`] slot.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The sum interpreted as nanoseconds, in seconds — the convention
    /// for the [`crate::PHASE_METRIC`] family.
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / 1e9
        }
    }
}

/// The value half of a snapshot entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One named metric (with labels) in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Metric name as registered.
    pub name: String,
    /// Label pairs as registered.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: MetricValue,
}

/// A deterministic point-in-time copy of a registry: entries are
/// sorted by `(name, labels)`, so equal registries snapshot to equal
/// values regardless of registration or thread interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sorted metric entries.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`, deterministically: counters and
    /// histograms add, gauges keep the maximum, and entries only in
    /// `other` are inserted at their sorted position. Merging worker
    /// snapshots in any order yields the same result.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for entry in &other.entries {
            let key = (&entry.name, &entry.labels);
            match self
                .entries
                .binary_search_by(|e| (&e.name, &e.labels).cmp(&key))
            {
                Err(pos) => self.entries.insert(pos, entry.clone()),
                Ok(pos) => match (&mut self.entries[pos].value, &entry.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.wrapping_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        a.count = a.count.wrapping_add(b.count);
                        a.sum = a.sum.wrapping_add(b.sum);
                        for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                            *x = x.wrapping_add(*y);
                        }
                    }
                    // Mixed kinds under one key cannot happen within a
                    // registry; across hand-built snapshots, keep self.
                    _ => {}
                },
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type MetricKey = (String, Vec<(String, String)>);

/// A registry of named metrics. See the crate docs for the locking
/// story; [`crate::global`] holds the process-wide instance.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name` (no labels), created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// If the (name, labels) pair is registered as a different kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let metric = self.get_or_insert(name, labels, || Metric::Counter(Arc::default()));
        match metric {
            Metric::Counter(c) => c,
            _ => panic!("telemetry: {name} is already registered as a non-counter"),
        }
    }

    /// The gauge named `name` (no labels), created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// If the (name, labels) pair is registered as a different kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let metric = self.get_or_insert(name, labels, || Metric::Gauge(Arc::default()));
        match metric {
            Metric::Gauge(g) => g,
            _ => panic!("telemetry: {name} is already registered as a non-gauge"),
        }
    }

    /// The histogram named `name` (no labels), created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram named `name` with `labels`, created on first use.
    ///
    /// # Panics
    ///
    /// If the (name, labels) pair is registered as a different kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let metric = self.get_or_insert(name, labels, || Metric::Histogram(Arc::default()));
        match metric {
            Metric::Histogram(h) => h,
            _ => panic!("telemetry: {name} is already registered as a non-histogram"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key: MetricKey = (
            name.to_string(),
            labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        );
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        map.entry(key).or_insert_with(make).clone()
    }

    /// Zeroes every registered value; registrations (and the `Arc`
    /// handles callers cached) stay valid.
    pub fn reset(&self) {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// A deterministic snapshot of every registered metric, sorted by
    /// `(name, labels)`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|((name, labels), metric)| MetricEntry {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, escaped labels, cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count` for histograms.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        prometheus::render(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_increments_sum_exactly() {
        let registry = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let counter = registry.counter("hits_total");
                    let histogram = registry.histogram("lat_nanos");
                    for i in 0..PER_THREAD {
                        counter.inc();
                        histogram.observe(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.counter("hits_total").get(), 8 * PER_THREAD);
        let histogram = registry.histogram("lat_nanos");
        assert_eq!(histogram.count(), 8 * PER_THREAD);
        // Σ 0..10000 per thread.
        assert_eq!(histogram.sum(), 8 * (PER_THREAD * (PER_THREAD - 1) / 2));
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for k in 1..64 {
            let p = 1u64 << k;
            assert_eq!(Histogram::bucket_index(p - 1), k, "2^{k}-1");
            assert_eq!(Histogram::bucket_index(p), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(p + 1), k + 1, "2^{k}+1");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 1 << 20, (1 << 20) + 1, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[21], 2);
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(
            snap.sum,
            1u64.wrapping_add(1 << 20)
                .wrapping_add((1 << 20) + 1)
                .wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn gauge_set_and_high_water() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn labels_key_distinct_series() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("reqs_total", &[("route", "/jobs")])
            .add(2);
        registry
            .counter_with("reqs_total", &[("route", "/stats")])
            .inc();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.entries.len(), 2);
        assert_eq!(snapshot.entries[0].value, MetricValue::Counter(2));
        assert_eq!(snapshot.entries[1].value, MetricValue::Counter(1));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("n");
        c.add(7);
        registry.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(registry.counter("n").get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("x");
        let _ = registry.gauge("x");
    }

    #[test]
    fn snapshots_merge_deterministically() {
        let a = MetricsRegistry::new();
        a.counter("c").add(1);
        a.gauge("g").set(4);
        a.histogram("h").observe(10);
        let b = MetricsRegistry::new();
        b.counter("c").add(2);
        b.gauge("g").set(2);
        b.histogram("h").observe(100);
        b.counter("only_b").inc();

        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);

        let c = ab
            .entries
            .iter()
            .find(|e| e.name == "c")
            .map(|e| e.value.clone());
        assert_eq!(c, Some(MetricValue::Counter(3)));
        let g = ab
            .entries
            .iter()
            .find(|e| e.name == "g")
            .map(|e| e.value.clone());
        assert_eq!(g, Some(MetricValue::Gauge(4)));
    }
}

//! Unified telemetry: a std-only metrics plane for the workspace.
//!
//! Three pieces, no dependencies (the workspace builds fully offline):
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket log₂
//!   [`Histogram`]s, all backed by relaxed atomics so pool workers
//!   record lock-free. Registration takes a short mutex; hot paths
//!   cache the returned [`std::sync::Arc`] handle (see [`PhaseTimer`])
//!   and never touch the lock again.
//! * [`Span`] — lightweight phase timing. `Span::enter("dd.apply")`
//!   captures an [`Instant`]; on [`Span::finish`] (or drop) the elapsed
//!   nanoseconds are recorded into the per-phase histogram family
//!   [`PHASE_METRIC`]. The clock is always read — callers that feed
//!   `runtime`/`wall_seconds` statistics from the returned duration
//!   stay correct even when recording is disabled.
//! * Export — [`MetricsRegistry::render_prometheus`] produces the
//!   Prometheus text exposition format (served at `GET /metrics` by
//!   `approxdd-server`), and [`MetricsRegistry::snapshot`] produces a
//!   deterministic, mergeable [`MetricsSnapshot`] that
//!   `approxdd_sim::ndjson` turns into NDJSON for the bench bins.
//!
//! # Determinism contract
//!
//! Telemetry is a write-only side channel: nothing in this crate is
//! ever read back into simulation decisions, and no telemetry value
//! participates in `PoolOutcome::fingerprint`. Toggling
//! [`set_enabled`] therefore cannot move a bit of simulation output —
//! the workspace proves this with a proptest comparing fingerprints
//! with telemetry on and off across 1/2/8 workers.
//!
//! # Example
//!
//! ```
//! use approxdd_telemetry as telemetry;
//!
//! let registry = telemetry::MetricsRegistry::new();
//! registry.counter("jobs_total").inc();
//! registry.gauge("queue_depth").set(3);
//! registry.histogram("chunk_nanos").observe(1500);
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE jobs_total counter"));
//! assert!(text.contains("jobs_total 1"));
//! assert!(text.contains("chunk_nanos_bucket{le=\"2047\"} 1"));
//! ```

#![warn(missing_docs)]

mod metrics;
mod prometheus;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use prometheus::{escape_label_value, sanitize_label_name, sanitize_metric_name};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Name of the shared phase-duration histogram family; each phase is a
/// `phase="..."` label (e.g. `dd.apply`, `pool.queue_wait`).
pub const PHASE_METRIC: &str = "approxdd_phase_duration_nanoseconds";

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide registry every [`Span`] and instrumentation site
/// records into, and the one `GET /metrics` serves.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Whether telemetry recording is enabled (default: yes).
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording. Disabling stops new values
/// from being recorded but leaves already-registered metrics in place;
/// simulation output is identical either way (see the crate docs).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every value in the [`global`] registry (registrations are
/// kept). Bench bins call this before a measured run so the emitted
/// snapshot covers exactly that run.
pub fn reset() {
    global().reset();
}

/// The per-phase histogram handle for `phase` in the [`global`]
/// registry. Hot paths call this once and keep the `Arc`.
pub fn phase_histogram(phase: &str) -> Arc<Histogram> {
    global().histogram_with(PHASE_METRIC, &[("phase", phase)])
}

/// A phase-timing span over the [`global`] registry.
///
/// Records wall time into [`PHASE_METRIC`] exactly once — on
/// [`Span::finish`] or on drop, whichever comes first. The clock is
/// captured unconditionally so `finish()` can feed `runtime` statistics
/// even when recording is [disabled](set_enabled).
#[derive(Debug)]
pub struct Span {
    phase: &'static str,
    start: Instant,
    recorded: bool,
}

impl Span {
    /// Starts timing `phase`.
    #[must_use]
    pub fn enter(phase: &'static str) -> Self {
        Self {
            phase,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Elapsed time so far, without recording anything.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stops the span, records it (if telemetry is enabled) and returns
    /// the elapsed wall time — drop-in for `Instant::now()` pairs that
    /// feed `runtime`/`wall_seconds` result fields.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        if !self.recorded {
            self.recorded = true;
            if enabled() {
                phase_histogram(self.phase).observe_duration(elapsed);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
    }
}

/// A cached per-phase timer for hot loops (e.g. the per-op apply in the
/// simulator run loop): resolves the histogram handle once, then each
/// observation is two clock reads and a few relaxed atomic adds. When
/// telemetry is disabled at construction, [`PhaseTimer::time`] runs the
/// closure with zero overhead.
#[derive(Debug, Clone)]
pub struct PhaseTimer {
    histogram: Option<Arc<Histogram>>,
}

impl PhaseTimer {
    /// A timer for `phase`, inert if telemetry is disabled right now.
    #[must_use]
    pub fn new(phase: &str) -> Self {
        Self {
            histogram: enabled().then(|| phase_histogram(phase)),
        }
    }

    /// Runs `f`, recording its wall time when the timer is live.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.histogram {
            None => f(),
            Some(h) => {
                let start = Instant::now();
                let out = f();
                h.observe_duration(start.elapsed());
                out
            }
        }
    }

    /// Records an externally measured duration when the timer is live.
    pub fn observe(&self, elapsed: Duration) {
        if let Some(h) = &self.histogram {
            h.observe_duration(elapsed);
        }
    }
}

/// Bumps a counter in the [`global`] registry, if telemetry is
/// enabled. Convenience for cold instrumentation sites; hot paths
/// should cache the handle from [`MetricsRegistry::counter`] instead.
pub fn count(name: &str, delta: u64) {
    if enabled() {
        global().counter(name).add(delta);
    }
}

/// Labelled variant of [`count`].
pub fn count_with(name: &str, labels: &[(&str, &str)], delta: u64) {
    if enabled() {
        global().counter_with(name, labels).add(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_phase_family() {
        let before = phase_histogram("test.span_records").count();
        let span = Span::enter("test.span_records");
        assert!(span.elapsed() <= Duration::from_secs(1));
        let elapsed = span.finish();
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(phase_histogram("test.span_records").count(), before + 1);
    }

    #[test]
    fn span_records_once_even_with_drop() {
        let before = phase_histogram("test.span_once").count();
        let span = Span::enter("test.span_once");
        let _ = span.finish(); // finish consumes; drop must not double-record
        assert_eq!(phase_histogram("test.span_once").count(), before + 1);
    }

    #[test]
    fn phase_timer_times_closures() {
        let timer = PhaseTimer::new("test.timer");
        let value = timer.time(|| 41 + 1);
        assert_eq!(value, 42);
        timer.observe(Duration::from_micros(3));
        if timer.histogram.is_some() {
            assert!(phase_histogram("test.timer").count() >= 2);
        }
    }
}

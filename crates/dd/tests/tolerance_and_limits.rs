//! Behavioral tests of the numerical tolerance and engine limits:
//! looser tolerances buy smaller DDs at bounded accuracy cost, and the
//! guard rails reject out-of-range inputs cleanly.

use approxdd_complex::{Cplx, Tolerance};
use approxdd_dd::{DdError, GateKind, Package, VEdge};

/// A mildly perturbed uniform state: amplitudes 1/√N ± jitter. With a
/// tight tolerance every leaf pair is distinct; with a loose tolerance
/// the jitter merges away and the DD collapses to one node per level.
fn jittered_uniform(p: &mut Package, n: usize, jitter: f64) -> VEdge {
    let dim = 1usize << n;
    let base = 1.0 / (dim as f64).sqrt();
    let amps: Vec<Cplx> = (0..dim)
        .map(|i| Cplx::real(base + jitter * (((i * 2654435761) % 97) as f64 / 97.0 - 0.5)))
        .collect();
    p.from_amplitudes(&amps).unwrap()
}

#[test]
fn loose_tolerance_merges_near_equal_nodes() {
    let n = 8;
    let jitter = 1e-8;

    let mut tight = Package::with_tolerance(Tolerance::new(1e-12));
    let e_tight = jittered_uniform(&mut tight, n, jitter);
    let tight_size = tight.vsize(e_tight);

    let mut loose = Package::with_tolerance(Tolerance::new(1e-5));
    let e_loose = jittered_uniform(&mut loose, n, jitter);
    let loose_size = loose.vsize(e_loose);

    assert!(
        loose_size < tight_size,
        "loose {loose_size} vs tight {tight_size}"
    );
    // The loose DD is the uniform state: one node per level.
    assert_eq!(loose_size, n);
}

#[test]
fn loose_tolerance_errors_stay_bounded() {
    let n = 6;
    let jitter = 1e-8;
    let mut loose = Package::with_tolerance(Tolerance::new(1e-5));
    let e = jittered_uniform(&mut loose, n, jitter);
    let amps = loose.to_amplitudes(e, n).unwrap();
    let want = 1.0 / (1u64 << n) as f64;
    for (i, a) in amps.iter().enumerate() {
        // Rounding error is on the order of the tolerance, amplified at
        // most polynomially through the levels.
        assert!(
            (a.mag2() - want).abs() < 1e-3,
            "amplitude {i}: {} vs {want}",
            a.mag2()
        );
    }
}

#[test]
fn default_tolerance_separates_physical_amplitudes() {
    // Two genuinely different states must not be merged.
    let mut p = Package::new();
    let a = p
        .from_amplitudes(&[Cplx::real(0.6), Cplx::real(0.8)])
        .unwrap();
    let b = p
        .from_amplitudes(&[Cplx::real(0.8), Cplx::real(0.6)])
        .unwrap();
    assert_ne!(a.node, b.node);
    let f = p.fidelity(a, b);
    assert!((f - 0.9216).abs() < 1e-10, "fidelity {f}"); // (0.48+0.48)^2
}

#[test]
fn to_amplitudes_guards_width() {
    let mut p = Package::new();
    let e = p.basis_state(3, 1);
    assert!(matches!(
        p.to_amplitudes(e, 27),
        Err(DdError::TooManyQubits { .. })
    ));
    assert!(matches!(
        p.to_amplitudes(e, 2),
        Err(DdError::DimensionMismatch { .. })
    ));
    // Embedding a smaller DD into a wider register is allowed (zero
    // stubs pad the upper levels).
    let wide = p.to_amplitudes(e, 4);
    assert!(wide.is_ok());
}

#[test]
fn gate_builders_guard_geometry() {
    let mut p = Package::new();
    assert!(matches!(
        p.single_gate(300, 0, GateKind::X.matrix()),
        Err(DdError::TooManyQubits { .. })
    ));
    assert!(matches!(
        p.dense_block_gate(4, 0, 2, &[Cplx::ONE; 7], &[]),
        Err(DdError::InvalidMatrix { .. })
    ));
    assert!(matches!(
        p.permutation_gate(4, 3, 2, &[0, 1, 2, 3], &[]),
        Err(DdError::QubitOutOfRange { .. })
    ));
}

#[test]
fn single_qubit_engine_works_end_to_end() {
    // Degenerate width-1 register: full pipeline.
    let mut p = Package::new();
    let v = p.zero_state(1);
    let h = p.single_gate(1, 0, GateKind::H.matrix()).unwrap();
    let v = p.apply(h, v);
    assert!((p.probability(v, 0) - 0.5).abs() < 1e-12);
    let cm = p.contributions(v);
    assert_eq!(cm.node_count(), 1);
    assert!((cm.level_sum(0) - 1.0).abs() < 1e-12);
    // Truncation has nothing to remove except the root (kept).
    let r = p
        .truncate(v, approxdd_dd::RemovalStrategy::Budget(0.4))
        .unwrap();
    assert_eq!(r.fidelity, 1.0);
}

#[test]
fn deep_register_basis_states() {
    // 63 qubits: the basis-index limit.
    let mut p = Package::new();
    let idx = (1u64 << 62) | 0b1011;
    let v = p.basis_state(63, idx);
    assert_eq!(p.vsize(v), 63);
    assert!((p.amplitude(v, idx).mag2() - 1.0).abs() < 1e-12);
    assert!(p.amplitude(v, idx ^ 1).mag2() < 1e-12);
    let mut rng = rand_rng();
    assert_eq!(p.sample(v, &mut rng), idx);
}

fn rand_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(1)
}

#[test]
fn repeated_gc_cycles_preserve_semantics() {
    let mut p = Package::new();
    let mut kept = p.basis_state(6, 33);
    p.inc_ref(kept);
    let h = p.single_gate(6, 2, GateKind::H.matrix()).unwrap();
    p.inc_ref_m(h);
    for _ in 0..50 {
        // Generate garbage, collect, and verify the kept state.
        let _g1 = p.basis_state(6, 12);
        let tmp = p.apply(h, kept);
        p.inc_ref(tmp);
        let back = p.apply(h, tmp); // H twice = identity
        p.inc_ref(back);
        p.dec_ref(kept);
        p.dec_ref(tmp);
        kept = back;
        let _ = p.collect_garbage();
        assert!((p.probability(kept, 33) - 1.0).abs() < 1e-9);
    }
}

//! Property-based tests of the decision-diagram engine's invariants:
//! canonicity, linear-algebra laws against dense references, unitarity
//! of constructed gates, and the approximation guarantees.

use approxdd_complex::Cplx;
use approxdd_dd::{GateKind, Package, RemovalStrategy};
use proptest::prelude::*;

/// A random complex amplitude vector of dimension `2^n`, normalized.
fn unit_state(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n).prop_filter_map(
        "usable norm",
        |pairs| {
            let norm: f64 = pairs
                .iter()
                .map(|(re, im)| re * re + im * im)
                .sum::<f64>()
                .sqrt();
            if norm < 1e-3 {
                return None;
            }
            Some(
                pairs
                    .into_iter()
                    .map(|(re, im)| Cplx::new(re / norm, im / norm))
                    .collect(),
            )
        },
    )
}

/// A random single-qubit gate from the full alphabet.
fn random_gate() -> impl Strategy<Value = GateKind> {
    prop_oneof![
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::H),
        Just(GateKind::S),
        Just(GateKind::T),
        Just(GateKind::SxGate),
        Just(GateKind::SyGate),
        (-3.0f64..3.0).prop_map(GateKind::Phase),
        (-3.0f64..3.0).prop_map(GateKind::Rx),
        (-3.0f64..3.0).prop_map(GateKind::Ry),
        (-3.0f64..3.0).prop_map(GateKind::Rz),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_preserves_amplitudes(amps in unit_state(4)) {
        let mut p = Package::new();
        let e = p.from_amplitudes(&amps).unwrap();
        let back = p.to_amplitudes(e, 4).unwrap();
        for (a, b) in amps.iter().zip(&back) {
            prop_assert!((*a - *b).mag() < 1e-10);
        }
    }

    #[test]
    fn identical_states_share_the_root(amps in unit_state(3)) {
        // Canonicity: building the same vector twice yields the same
        // node, even through an unrelated interleaved construction.
        let mut p = Package::new();
        let e1 = p.from_amplitudes(&amps).unwrap();
        let _noise = p.basis_state(3, 5);
        let e2 = p.from_amplitudes(&amps).unwrap();
        prop_assert_eq!(e1.node, e2.node);
        prop_assert!((e1.w - e2.w).mag() < 1e-9);
    }

    #[test]
    fn global_phase_lands_on_the_edge(amps in unit_state(3), theta in -3.0f64..3.0) {
        // Canonicity is tolerance-grade: phase-rotated weights travel a
        // different float path, so node *identity* can occasionally miss
        // on a quantization-grid boundary. The guaranteed properties are
        // physical equality (fidelity 1) and equal compression.
        let mut p = Package::new();
        let phase = Cplx::from_polar(1.0, theta);
        let rotated: Vec<Cplx> = amps.iter().map(|a| *a * phase).collect();
        let e1 = p.from_amplitudes(&amps).unwrap();
        let e2 = p.from_amplitudes(&rotated).unwrap();
        let f = p.fidelity(e1, e2);
        prop_assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
        prop_assert_eq!(p.vsize(e1), p.vsize(e2));
    }

    #[test]
    fn addition_is_linear(a in unit_state(3), b in unit_state(3)) {
        let mut p = Package::new();
        let ea = p.from_amplitudes(&a).unwrap();
        let eb = p.from_amplitudes(&b).unwrap();
        let sum = p.add(ea, eb);
        let dense = p.to_amplitudes(sum, 3).unwrap();
        for i in 0..8 {
            prop_assert!((dense[i] - (a[i] + b[i])).mag() < 1e-9, "index {i}");
        }
    }

    #[test]
    fn gate_application_matches_dense_math(amps in unit_state(3),
                                           g in random_gate(),
                                           target in 0usize..3) {
        let mut p = Package::new();
        let e = p.from_amplitudes(&amps).unwrap();
        let dd_gate = p.single_gate(3, target, g.matrix()).unwrap();
        let r = p.apply(dd_gate, e);
        let got = p.to_amplitudes(r, 3).unwrap();

        // Dense reference.
        let m = g.matrix();
        let mut want = amps.clone();
        let tbit = 1usize << target;
        for i in 0..8 {
            if i & tbit == 0 {
                let (a0, a1) = (amps[i], amps[i | tbit]);
                want[i] = m[0][0] * a0 + m[0][1] * a1;
                want[i | tbit] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
        for i in 0..8 {
            prop_assert!((got[i] - want[i]).mag() < 1e-9, "index {i}");
        }
    }

    #[test]
    fn controlled_gates_are_unitary(g in random_gate(),
                                    target in 0usize..4,
                                    control in 0usize..4,
                                    positive in any::<bool>()) {
        prop_assume!(target != control);
        let mut p = Package::new();
        let dd = p
            .controlled_gate_polarized(4, &[(control, positive)], target, g.matrix())
            .unwrap();
        let dag = p.conj_transpose(dd);
        let prod = p.mul_mm(dd, dag);
        let id = p.identity(4);
        prop_assert_eq!(prod.node, id.node, "U U† must be the identity node");
        prop_assert!((prod.w - id.w).mag() < 1e-9);
    }

    #[test]
    fn unitaries_preserve_norm(amps in unit_state(4), g in random_gate(),
                               target in 0usize..4) {
        let mut p = Package::new();
        let e = p.from_amplitudes(&amps).unwrap();
        let dd_gate = p.single_gate(4, target, g.matrix()).unwrap();
        let r = p.apply(dd_gate, e);
        prop_assert!((p.norm(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn truncation_bound_holds(amps in unit_state(5), budget in 0.0f64..0.6) {
        let mut p = Package::new();
        let e = p.from_amplitudes(&amps).unwrap();
        p.inc_ref(e);
        let r = p.truncate(e, RemovalStrategy::Budget(budget)).unwrap();
        prop_assert!(r.fidelity >= 1.0 - budget - 1e-9);
        prop_assert!(r.size_after <= r.size_before);
        let measured = p.fidelity(e, r.edge);
        prop_assert!((measured - r.fidelity).abs() < 1e-8);
    }

    #[test]
    fn permutation_gates_permute(perm_seed in 0u64..1000) {
        // Build a pseudo-random permutation of 8 elements and verify the
        // gate maps basis states accordingly.
        let mut p = Package::new();
        let mut perm: Vec<usize> = (0..8).collect();
        let mut s = perm_seed;
        for i in (1..8usize).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let g = p.permutation_gate(3, 0, 3, &perm, &[]).unwrap();
        for c in 0..8u64 {
            let v = p.basis_state(3, c);
            let r = p.apply(g, v);
            let prob = p.probability(r, perm[c as usize] as u64);
            prop_assert!((prob - 1.0).abs() < 1e-9, "|{c}> -> |{}>", perm[c as usize]);
        }
    }

    #[test]
    fn inner_product_is_cauchy_schwarz_bounded(a in unit_state(4), b in unit_state(4)) {
        let mut p = Package::new();
        let ea = p.from_amplitudes(&a).unwrap();
        let eb = p.from_amplitudes(&b).unwrap();
        let f = p.fidelity(ea, eb);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn kron_matches_dense_tensor(a in unit_state(2), b in unit_state(2)) {
        let mut p = Package::new();
        let ea = p.from_amplitudes(&a).unwrap();
        let eb = p.from_amplitudes(&b).unwrap();
        let joint = p.vkron(ea, eb);
        let dense = p.to_amplitudes(joint, 4).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let want = a[i] * b[j];
                let got = dense[(i << 2) | j];
                prop_assert!((got - want).mag() < 1e-9, "({i},{j})");
            }
        }
    }
}

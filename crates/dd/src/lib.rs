//! Decision-diagram (DD) engine for quantum circuit simulation, with
//! fidelity-controlled approximation.
//!
//! This crate implements the data-structure substrate of the DATE 2021
//! paper *"As Accurate as Needed, as Efficient as Possible: Approximations
//! in DD-based Quantum Circuit Simulation"* (Hillmich, Kueng, Markov,
//! Wille): QMDD-style decision diagrams for quantum states (vector DDs)
//! and operations (matrix DDs), plus the paper's core primitives —
//! per-node **contribution analysis** (Definition 2) and **truncation**
//! (Section IV-A / Equation 1) with an exact fidelity read-out.
//!
//! # Architecture
//!
//! Everything lives inside a [`Package`]: node arenas, unique tables
//! (canonicity), compute tables (memoization of add / multiply / inner
//! product), a tolerance, and cached identity diagrams. Edges
//! ([`VEdge`], [`MEdge`]) are small copyable handles: a complex weight
//! plus a node id. All operations are methods on [`Package`].
//!
//! * Vector nodes are normalized so the outgoing weight pair has unit
//!   ℓ2-norm and canonical phase. Consequently every node's subtree
//!   represents a *unit-norm* sub-vector, and the contribution of a node
//!   is exactly the accumulated squared path weight from the root — a
//!   single topological pass ([`Package::contributions`]).
//! * Matrix nodes are normalized by their largest-magnitude weight
//!   (QMDD convention).
//! * Edges descend strictly one level at a time; qubit `0` is the lowest
//!   level (least significant bit of a basis index).
//!
//! ## The memory system (hot-path design)
//!
//! The package's storage follows the design of production DD packages
//! (the MQT DDSIM lineage):
//!
//! * **Struct-of-arrays arenas.** Node payloads live in a dense `Vec`;
//!   reference counts and the `alive`/`mark` GC flags live in parallel
//!   arrays (the flags as packed bitsets). Operation recursion touches
//!   only payload bytes; GC mark-clearing is a memset and the sweep
//!   skips 64 dead-free slots per word.
//! * **Per-level open-addressed unique tables.** Canonicalization
//!   queries probe a flat `(hash, id)` bucket array per level with
//!   linear probing and load-factor resize; full key comparisons read
//!   the candidate node straight from the arena. The unique table is
//!   **exact** — entries live as long as their nodes — because it is
//!   what makes DDs canonical.
//! * **Fixed-size, direct-mapped lossy compute caches.** The four
//!   memoization tables (`add`, `mul_mv`, `mul_mm`, `inner`) are flat
//!   slot arrays indexed by `hash & mask` that overwrite on collision
//!   and invalidate via an O(1) generation bump. Lossiness is safe by
//!   construction: every cache key identifies its result exactly. For
//!   `mul_mv`/`mul_mm`/`inner` the node-id pair alone does (top
//!   weights factor out); for `add` the key adds the weight ratio
//!   *interned through a canonicalization map* (tolerance bucket → the
//!   first exact ratio seen), and the recursion runs on that canonical
//!   ratio — so near-equal ratios share one key *and* one result, and
//!   a hit returns precisely what recomputation would. An undersized
//!   cache costs time, never a different answer. Size the caches per
//!   package with [`Package::with_cache_bits`] (2^16 slots per table
//!   by default).
//!
//! Results are therefore **bit-identical across every cache
//! configuration**; the workspace's `cache_equivalence` suite
//! property-tests exactly that (4-bit vs. default vs. 20-bit caches),
//! and [`PackageStats`] reports per-table hit rates and occupancy so
//! regressions in cache behavior show up in benchmark JSON, not just
//! wall time.
//!
//! # Quickstart
//!
//! ```
//! use approxdd_dd::{Package, GateKind};
//!
//! let mut p = Package::new();
//! // |00>  --H(1)-->  --CX(1->0)-->  (|00> + |11>)/sqrt(2)
//! let state = p.basis_state(2, 0);
//! let h = p.single_gate(2, 1, GateKind::H.matrix()).unwrap();
//! let state = p.apply(h, state);
//! let cx = p.controlled_gate(2, &[1], 0, GateKind::X.matrix()).unwrap();
//! let state = p.apply(cx, state);
//!
//! let amps = p.to_amplitudes(state, 2).unwrap();
//! assert!((amps[0].mag2() - 0.5).abs() < 1e-12);
//! assert!((amps[3].mag2() - 0.5).abs() < 1e-12);
//! assert!(amps[1].mag2() < 1e-12 && amps[2].mag2() < 1e-12);
//! ```
//!
//! # Approximation
//!
//! ```
//! use approxdd_dd::{Package, RemovalStrategy};
//!
//! let mut p = Package::new();
//! // A skewed superposition: mostly |11>, a little |00>.
//! let amps = [0.2, 0.0, 0.0, 0.979795897113271].map(approxdd_complex::Cplx::real);
//! let state = p.from_amplitudes(&amps).unwrap();
//! let result = p.truncate(state, RemovalStrategy::Budget(0.1)).unwrap();
//! assert!(result.fidelity >= 0.9);           // guaranteed lower bound
//! assert!(result.size_after <= result.size_before);
//! ```

mod approx;
mod arena;
mod contribution;
mod ctable;
mod dot;
mod edge;
mod error;
mod fasthash;
mod gates;
mod gc;
mod node;
mod ops;
mod package;
mod sample;
mod serialize;
mod snapshot;
mod unique;

pub use approx::{RemovalStrategy, TruncationResult};
pub use contribution::ContributionMap;
pub use ctable::CtStats;
pub use edge::{MEdge, NodeId, VEdge};
pub use error::DdError;
pub use gates::GateKind;
pub use gc::GcStats;
pub use package::{Package, PackageStats};
pub use snapshot::PackageSnapshot;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DdError>;

//! Fixed-capacity, direct-mapped **lossy** compute caches.
//!
//! The compute tables memoize the results of the recursive DD
//! operations (`add`, `mul_mv`, `mul_mm`, `inner_product`). Earlier
//! revisions used growable hash maps with a wholesale clear past an
//! entry cap; that design pays allocation, rehashing, and entry-API
//! overhead on the hottest loop of the simulator, and the cap-triggered
//! clears made hit-rate numbers incomparable across runs. This module
//! replaces them with the design production DD packages (the MQT
//! DDSIM lineage) use:
//!
//! * **Fixed capacity, direct-mapped.** A flat slot array of
//!   `2^bits` entries indexed by `hash & mask`. No probing, no
//!   buckets, no allocation after construction: a lookup is one hash,
//!   one masked index, one key compare.
//! * **Overwrite on collision (lossy).** Two live keys that map to the
//!   same slot simply evict each other. Losing an entry is always
//!   safe: the operation recomputes the result from the (immutable)
//!   node structure, and recomputation is bit-deterministic — the
//!   unique table canonicalizes nodes independently of the memoization
//!   pattern, so a lossy cache can cost time, never correctness.
//! * **Generation-stamped clearing.** Every slot carries the
//!   generation at which it was written; [`ComputeCache::clear`] bumps
//!   the cache's current generation, invalidating every slot in O(1)
//!   instead of freeing buckets. Garbage collection — which must drop
//!   all memoized results because they may reference freed nodes —
//!   becomes a single integer increment per table.
//!
//! Hit/miss accounting lives *inside* [`ComputeCache::lookup`]: every
//! lookup increments exactly one of the two counters, so hit rates are
//! uniform across operation implementations and comparable across runs
//! regardless of how often the tables were cleared.

use std::hash::{Hash, Hasher};

use crate::fasthash::FxHasher;

/// Default `log2` capacity of each compute cache (65 536 slots).
pub(crate) const DEFAULT_COMPUTE_CACHE_BITS: u32 = 16;
/// Smallest accepted `log2` capacity (4 slots) — tiny caches are valid
/// (just slow), and the equivalence test suite runs them on purpose.
pub(crate) const MIN_COMPUTE_CACHE_BITS: u32 = 2;
/// Largest accepted `log2` capacity (64 Mi slots) — beyond this the
/// slot array itself stops fitting in reasonable memory.
pub(crate) const MAX_COMPUTE_CACHE_BITS: u32 = 26;

/// Clamps a requested cache size to the supported range.
pub(crate) fn clamp_cache_bits(bits: u32) -> u32 {
    bits.clamp(MIN_COMPUTE_CACHE_BITS, MAX_COMPUTE_CACHE_BITS)
}

/// Counters of one compute cache, exposed through
/// [`crate::PackageStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtStats {
    /// Lookups that returned a memoized result.
    pub hits: u64,
    /// Lookups that found nothing (followed by recomputation + insert).
    pub misses: u64,
    /// Slots currently holding a live (current-generation) entry.
    pub occupancy: usize,
    /// Total slots (fixed at construction).
    pub capacity: usize,
}

impl CtStats {
    /// Hit rate over the package's lifetime, `hits / (hits + misses)`;
    /// 0 when no lookups happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }

    /// Fraction of slots holding a live entry.
    #[must_use]
    pub fn occupancy_rate(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.occupancy as f64 / self.capacity as f64
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Generation at which this slot was written; `0` means never.
    stamp: u32,
}

/// A direct-mapped lossy cache from `K` to `V` (see the module docs).
#[derive(Debug)]
pub(crate) struct ComputeCache<K, V> {
    slots: Vec<Slot<K, V>>,
    mask: u64,
    /// Current generation; slots stamped with anything else are dead.
    /// Starts at 1 so the zero-initialized stamps read as empty.
    generation: u32,
    hits: u64,
    misses: u64,
    occupancy: usize,
}

impl<K: Copy + Eq + Hash, V: Copy> ComputeCache<K, V> {
    /// Creates a cache with `2^bits` slots. `filler` values initialize
    /// the slot array and are never observable (stamp 0 is dead).
    pub(crate) fn new(bits: u32, filler_key: K, filler_value: V) -> Self {
        let bits = clamp_cache_bits(bits);
        let capacity = 1usize << bits;
        Self {
            slots: vec![
                Slot {
                    key: filler_key,
                    value: filler_value,
                    stamp: 0,
                };
                capacity
            ],
            mask: (capacity - 1) as u64,
            generation: 1,
            hits: 0,
            misses: 0,
            occupancy: 0,
        }
    }

    #[inline]
    fn index(&self, key: &K) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        #[allow(clippy::cast_possible_truncation)]
        {
            (h.finish() & self.mask) as usize
        }
    }

    /// Looks up `key`, counting the outcome (the **only** place hits
    /// and misses are counted — see the module docs).
    #[inline]
    pub(crate) fn lookup(&mut self, key: &K) -> Option<V> {
        let idx = self.index(key);
        let slot = &self.slots[idx];
        if slot.stamp == self.generation && slot.key == *key {
            self.hits += 1;
            Some(slot.value)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or overwrites) the slot `key` maps to.
    #[inline]
    pub(crate) fn insert(&mut self, key: K, value: V) {
        let idx = self.index(&key);
        let generation = self.generation;
        let slot = &mut self.slots[idx];
        if slot.stamp != generation {
            self.occupancy += 1;
        }
        *slot = Slot {
            key,
            value,
            stamp: generation,
        };
    }

    /// Invalidates every entry in O(1) by bumping the generation.
    /// Hit/miss counters are *not* reset: they describe the package's
    /// lifetime, so rates stay comparable across GC cycles.
    pub(crate) fn clear(&mut self) {
        self.occupancy = 0;
        if self.generation == u32::MAX {
            // Once every 4 billion clears: hard-reset the stamps so the
            // generation can wrap without resurrecting ancient entries.
            for slot in &mut self.slots {
                slot.stamp = 0;
            }
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Counter snapshot for [`crate::PackageStats`].
    pub(crate) fn stats(&self) -> CtStats {
        CtStats {
            hits: self.hits,
            misses: self.misses,
            occupancy: self.occupancy,
            capacity: self.slots.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bits: u32) -> ComputeCache<(u32, u32), u64> {
        ComputeCache::new(bits, (u32::MAX, u32::MAX), 0)
    }

    #[test]
    fn lookup_after_insert_hits() {
        let mut c = cache(4);
        assert_eq!(c.lookup(&(1, 2)), None);
        c.insert((1, 2), 42);
        assert_eq!(c.lookup(&(1, 2)), Some(42));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.occupancy, s.capacity), (1, 1, 1, 16));
    }

    #[test]
    fn collisions_overwrite_lossily() {
        // A 1-slot-per-hash worst case: with 4 slots, distinct keys
        // must eventually collide; the newer entry wins and the older
        // one just misses (never a wrong value).
        let mut c = cache(MIN_COMPUTE_CACHE_BITS);
        for i in 0..64u32 {
            c.insert((i, i), u64::from(i));
        }
        for i in 0..64u32 {
            if let Some(v) = c.lookup(&(i, i)) {
                assert_eq!(v, u64::from(i), "stale value for key {i}");
            }
        }
        assert!(c.stats().occupancy <= 4);
    }

    #[test]
    fn clear_is_generation_bump() {
        let mut c = cache(4);
        c.insert((7, 7), 7);
        assert_eq!(c.lookup(&(7, 7)), Some(7));
        c.clear();
        assert_eq!(c.lookup(&(7, 7)), None, "cleared entry must be dead");
        assert_eq!(c.stats().occupancy, 0);
        // Counters survive the clear (lifetime accounting).
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        // The cache keeps working after the bump.
        c.insert((7, 7), 9);
        assert_eq!(c.lookup(&(7, 7)), Some(9));
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let mut c = cache(2);
        c.insert((1, 1), 1);
        c.generation = u32::MAX; // simulate 4 billion clears
        c.clear();
        assert_eq!(c.generation, 1);
        // The stale stamp (written at generation 1 originally) was
        // hard-reset, so the old entry cannot resurrect.
        assert_eq!(c.lookup(&(1, 1)), None);
    }

    #[test]
    fn bits_are_clamped() {
        let c: ComputeCache<(u32, u32), u64> = ComputeCache::new(0, (0, 0), 0);
        assert_eq!(c.stats().capacity, 1 << MIN_COMPUTE_CACHE_BITS);
        let c: ComputeCache<(u32, u32), u64> = ComputeCache::new(60, (0, 0), 0);
        assert_eq!(c.stats().capacity, 1 << MAX_COMPUTE_CACHE_BITS);
    }

    #[test]
    fn hit_rate_and_occupancy_rate() {
        let mut c = cache(4);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert((1, 1), 1);
        let _ = c.lookup(&(1, 1));
        let _ = c.lookup(&(2, 2));
        let s = c.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.occupancy_rate() - 1.0 / 16.0).abs() < 1e-12);
    }
}

//! Textual serialization of state DDs — checkpointing simulated states
//! and interchange between processes.
//!
//! The format is line-based and explicitly versioned:
//!
//! ```text
//! approxdd-vdd 1
//! nodes <count>
//! n <local-id> <var> <w0.re> <w0.im> <child0> <w1.re> <w1.im> <child1>
//! ...
//! root <w.re> <w.im> <node>
//! ```
//!
//! Children reference earlier local ids or `T` for the terminal; zero
//! edges are written as `0 0 T`. Deserialization rebuilds every node
//! through the unique table, so the result is canonical in the target
//! package regardless of the source package's tolerance.

use std::fmt::Write as _;

use approxdd_complex::Cplx;

use crate::edge::{MEdge, NodeId, VEdge};
use crate::error::DdError;
use crate::fasthash::FxHashMap;
use crate::package::Package;
use crate::Result;

const MAGIC: &str = "approxdd-vdd 1";

impl Package {
    /// Serializes a state DD to the textual format.
    #[must_use]
    pub fn serialize_state(&self, root: VEdge) -> String {
        // Topological order: children before parents (post-order DFS).
        let mut order: Vec<NodeId> = Vec::new();
        let mut seen: FxHashMap<NodeId, usize> = FxHashMap::default();
        self.postorder(root.node, &mut order, &mut seen);

        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "nodes {}", order.len());
        for (local, id) in order.iter().enumerate() {
            let node = self.vnode(*id);
            let _ = write!(out, "n {local} {}", node.var);
            for e in node.edges {
                let child = if e.node.is_terminal() {
                    "T".to_string()
                } else {
                    seen[&e.node].to_string()
                };
                let _ = write!(out, " {:.17e} {:.17e} {child}", e.w.re, e.w.im);
            }
            out.push('\n');
        }
        let root_ref = if root.node.is_terminal() {
            "T".to_string()
        } else {
            seen[&root.node].to_string()
        };
        let _ = writeln!(out, "root {:.17e} {:.17e} {root_ref}", root.w.re, root.w.im);
        out
    }

    fn postorder(
        &self,
        node: NodeId,
        order: &mut Vec<NodeId>,
        seen: &mut FxHashMap<NodeId, usize>,
    ) {
        if node.is_terminal() || seen.contains_key(&node) {
            return;
        }
        let n = *self.vnode(node);
        for e in n.edges {
            self.postorder(e.node, order, seen);
        }
        seen.insert(node, order.len());
        order.push(node);
    }

    /// Deserializes a state DD, rebuilding nodes canonically in this
    /// package.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidAmplitudes`] on malformed input (the reason
    /// string describes the first offending construct).
    pub fn deserialize_state(&mut self, text: &str) -> Result<VEdge> {
        let malformed = |reason: &'static str| DdError::InvalidAmplitudes { reason };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(MAGIC) {
            return Err(malformed("missing or unsupported format header"));
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.trim().strip_prefix("nodes "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("missing node count"))?;

        let mut edges_by_local: Vec<VEdge> = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| malformed("truncated node list"))?;
            let mut tok = line.split_whitespace();
            if tok.next() != Some("n") {
                return Err(malformed("expected node line"));
            }
            let local: usize = tok
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("bad local id"))?;
            if local != edges_by_local.len() {
                return Err(malformed("node ids must be dense and ascending"));
            }
            let var: u8 = tok
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("bad var"))?;
            let mut children = [VEdge::ZERO; 2];
            for child in &mut children {
                let re: f64 = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| malformed("bad weight"))?;
                let im: f64 = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| malformed("bad weight"))?;
                let target = tok.next().ok_or_else(|| malformed("missing child"))?;
                let edge = if target == "T" {
                    VEdge::terminal(Cplx::new(re, im))
                } else {
                    let idx: usize = target.parse().map_err(|_| malformed("bad child id"))?;
                    let base = *edges_by_local
                        .get(idx)
                        .ok_or_else(|| malformed("forward child reference"))?;
                    base.scaled(Cplx::new(re, im))
                };
                *child = if self.tolerance().is_zero(edge.w) {
                    VEdge::ZERO
                } else {
                    edge
                };
            }
            let rebuilt = self.make_vnode(var, children[0], children[1]);
            edges_by_local.push(rebuilt);
        }

        let root_line = lines.next().ok_or_else(|| malformed("missing root line"))?;
        let mut tok = root_line.split_whitespace();
        if tok.next() != Some("root") {
            return Err(malformed("expected root line"));
        }
        let re: f64 = tok
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("bad root weight"))?;
        let im: f64 = tok
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("bad root weight"))?;
        let target = tok.next().ok_or_else(|| malformed("missing root node"))?;
        let w = Cplx::new(re, im);
        if target == "T" {
            return Ok(if self.tolerance().is_zero(w) {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            });
        }
        let idx: usize = target.parse().map_err(|_| malformed("bad root id"))?;
        let base = *edges_by_local
            .get(idx)
            .ok_or_else(|| malformed("root references unknown node"))?;
        Ok(base.scaled(w))
    }
}

const MAGIC_M: &str = "approxdd-mdd 1";

impl Package {
    /// Serializes an operation (matrix) DD to the textual format —
    /// persisting expensive gate constructions (e.g. Shor's modular
    /// multiplications) across processes.
    #[must_use]
    pub fn serialize_operator(&self, root: MEdge) -> String {
        let mut order: Vec<NodeId> = Vec::new();
        let mut seen: FxHashMap<NodeId, usize> = FxHashMap::default();
        self.postorder_m(root.node, &mut order, &mut seen);

        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC_M}");
        let _ = writeln!(out, "nodes {}", order.len());
        for (local, id) in order.iter().enumerate() {
            let node = self.mnode(*id);
            let _ = write!(out, "n {local} {}", node.var);
            for e in node.edges {
                let child = if e.node.is_terminal() {
                    "T".to_string()
                } else {
                    seen[&e.node].to_string()
                };
                let _ = write!(out, " {:.17e} {:.17e} {child}", e.w.re, e.w.im);
            }
            out.push('\n');
        }
        let root_ref = if root.node.is_terminal() {
            "T".to_string()
        } else {
            seen[&root.node].to_string()
        };
        let _ = writeln!(out, "root {:.17e} {:.17e} {root_ref}", root.w.re, root.w.im);
        out
    }

    fn postorder_m(
        &self,
        node: NodeId,
        order: &mut Vec<NodeId>,
        seen: &mut FxHashMap<NodeId, usize>,
    ) {
        if node.is_terminal() || seen.contains_key(&node) {
            return;
        }
        let n = *self.mnode(node);
        for e in n.edges {
            self.postorder_m(e.node, order, seen);
        }
        seen.insert(node, order.len());
        order.push(node);
    }

    /// Deserializes an operation DD (see [`Package::serialize_operator`]).
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidMatrix`] on malformed input.
    pub fn deserialize_operator(&mut self, text: &str) -> Result<MEdge> {
        let malformed = |reason: &'static str| DdError::InvalidMatrix { reason };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(MAGIC_M) {
            return Err(malformed("missing or unsupported format header"));
        }
        let count: usize = lines
            .next()
            .and_then(|l| l.trim().strip_prefix("nodes "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("missing node count"))?;

        let mut edges_by_local: Vec<MEdge> = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| malformed("truncated node list"))?;
            let mut tok = line.split_whitespace();
            if tok.next() != Some("n") {
                return Err(malformed("expected node line"));
            }
            let local: usize = tok
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("bad local id"))?;
            if local != edges_by_local.len() {
                return Err(malformed("node ids must be dense and ascending"));
            }
            let var: u8 = tok
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("bad var"))?;
            let mut children = [MEdge::ZERO; 4];
            for child in &mut children {
                let re: f64 = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| malformed("bad weight"))?;
                let im: f64 = tok
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| malformed("bad weight"))?;
                let target = tok.next().ok_or_else(|| malformed("missing child"))?;
                let edge = if target == "T" {
                    MEdge::terminal(Cplx::new(re, im))
                } else {
                    let idx: usize = target.parse().map_err(|_| malformed("bad child id"))?;
                    let base = *edges_by_local
                        .get(idx)
                        .ok_or_else(|| malformed("forward child reference"))?;
                    base.scaled(Cplx::new(re, im))
                };
                *child = if self.tolerance().is_zero(edge.w) {
                    MEdge::ZERO
                } else {
                    edge
                };
            }
            let rebuilt = self.make_mnode(var, children);
            edges_by_local.push(rebuilt);
        }

        let root_line = lines.next().ok_or_else(|| malformed("missing root line"))?;
        let mut tok = root_line.split_whitespace();
        if tok.next() != Some("root") {
            return Err(malformed("expected root line"));
        }
        let re: f64 = tok
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("bad root weight"))?;
        let im: f64 = tok
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("bad root weight"))?;
        let target = tok.next().ok_or_else(|| malformed("missing root node"))?;
        let w = Cplx::new(re, im);
        if target == "T" {
            return Ok(if self.tolerance().is_zero(w) {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            });
        }
        let idx: usize = target.parse().map_err(|_| malformed("bad root id"))?;
        let base = *edges_by_local
            .get(idx)
            .ok_or_else(|| malformed("root references unknown node"))?;
        Ok(base.scaled(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &mut Package, e: VEdge, n: usize) {
        let text = p.serialize_state(e);
        let back = p.deserialize_state(&text).unwrap();
        let f = p.fidelity(e, back);
        assert!((f - 1.0).abs() < 1e-10, "fidelity {f}\n{text}");
        let a = p.to_amplitudes(e, n).unwrap();
        let b = p.to_amplitudes(back, n).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).mag() < 1e-10);
        }
    }

    #[test]
    fn basis_state_roundtrip() {
        let mut p = Package::new();
        let e = p.basis_state(5, 19);
        roundtrip(&mut p, e, 5);
    }

    #[test]
    fn structured_state_roundtrip() {
        let mut p = Package::new();
        let s = Cplx::FRAC_1_SQRT_2;
        let bell = p.from_amplitudes(&[s, Cplx::ZERO, Cplx::ZERO, s]).unwrap();
        roundtrip(&mut p, bell, 2);
    }

    #[test]
    fn complex_weights_roundtrip() {
        let mut p = Package::new();
        let amps: Vec<Cplx> = (0..16)
            .map(|i| Cplx::from_polar(((i % 5) as f64 + 1.0) / 8.0, i as f64 * 0.7))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum::<f64>().sqrt();
        let amps: Vec<Cplx> = amps.iter().map(|a| *a / norm).collect();
        let e = p.from_amplitudes(&amps).unwrap();
        roundtrip(&mut p, e, 4);
    }

    #[test]
    fn cross_package_transfer() {
        let mut src = Package::new();
        let e = src.basis_state(4, 7);
        let text = src.serialize_state(e);
        let mut dst = Package::new();
        let back = dst.deserialize_state(&text).unwrap();
        assert!((dst.probability(back, 7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_and_terminal_roots() {
        let mut p = Package::new();
        let text = p.serialize_state(VEdge::ONE);
        let back = p.deserialize_state(&text).unwrap();
        assert_eq!(back.node, NodeId::TERMINAL);

        let text = p.serialize_state(VEdge::ZERO);
        let back = p.deserialize_state(&text).unwrap();
        assert!(back.is_zero(p.tolerance()));
    }

    #[test]
    fn operator_roundtrip_preserves_action() {
        let mut p = Package::new();
        let perm: Vec<usize> = (0..16)
            .map(|x| if x < 15 { (7 * x) % 15 } else { x })
            .collect();
        let gate = p.permutation_gate(6, 0, 4, &perm, &[(5, true)]).unwrap();
        let text = p.serialize_operator(gate);
        let back = p.deserialize_operator(&text).unwrap();
        // Same action on a probe superposition.
        let probe_amps: Vec<Cplx> = (0..64)
            .map(|i| Cplx::from_polar(1.0 / 8.0, i as f64 * 0.3))
            .collect();
        let probe = p.from_amplitudes(&probe_amps).unwrap();
        let r1 = p.apply(gate, probe);
        let r2 = p.apply(back, probe);
        assert!((p.fidelity(r1, r2) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn operator_cross_package_transfer() {
        let mut src = Package::new();
        let h = src
            .single_gate(3, 1, crate::gates::GateKind::H.matrix())
            .unwrap();
        let text = src.serialize_operator(h);
        let mut dst = Package::new();
        let back = dst.deserialize_operator(&text).unwrap();
        let v = dst.zero_state(3);
        let r = dst.apply(back, v);
        assert!((dst.probability(r, 0) - 0.5).abs() < 1e-10);
        assert!((dst.probability(r, 0b010) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn operator_rejects_state_header() {
        let mut p = Package::new();
        let v = p.basis_state(2, 1);
        let state_text = p.serialize_state(v);
        assert!(p.deserialize_operator(&state_text).is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        let mut p = Package::new();
        assert!(p.deserialize_state("").is_err());
        assert!(p.deserialize_state("approxdd-vdd 1\nnodes 1\n").is_err());
        assert!(p
            .deserialize_state("approxdd-vdd 2\nnodes 0\nroot 1 0 T\n")
            .is_err());
        assert!(p
            .deserialize_state("approxdd-vdd 1\nnodes 0\nroot 1 0 5\n")
            .is_err());
    }
}

//! Graphviz DOT export for states and operations — the visualization
//! used in Fig. 1 of the paper.

use std::fmt::Write as _;

use crate::edge::{MEdge, NodeId, VEdge};
use crate::fasthash::FxHashMap;
use crate::package::Package;

impl Package {
    /// Renders a state DD as a Graphviz `digraph`. Edge labels carry the
    /// weights (suppressed when exactly 1); nodes are labeled `q<var>`.
    #[must_use]
    pub fn to_dot(&self, root: VEdge) -> String {
        let mut out = String::from("digraph dd {\n  rankdir=TB;\n  root [shape=point];\n");
        let mut ids: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack = vec![root.node];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || ids.contains_key(&id) {
                continue;
            }
            ids.insert(id, order.len());
            order.push(id);
            let node = self.vnode(id);
            stack.push(node.edges[0].node);
            stack.push(node.edges[1].node);
        }
        out.push_str("  t [label=\"1\", shape=box];\n");
        for (id, i) in order.iter().map(|id| (*id, ids[id])) {
            let node = self.vnode(id);
            let _ = writeln!(out, "  n{i} [label=\"q{}\", shape=circle];", node.var);
        }
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{}\"];",
            Self::dot_target(&ids, root.node),
            fmt_weight(root.w)
        );
        for (id, i) in order.iter().map(|id| (*id, ids[id])) {
            let node = self.vnode(id);
            for (b, e) in node.edges.iter().enumerate() {
                if e.is_zero(self.tolerance()) {
                    continue;
                }
                let style = if b == 0 { "dashed" } else { "solid" };
                let _ = writeln!(
                    out,
                    "  n{i} -> {} [label=\"{}\", style={style}];",
                    Self::dot_target(&ids, e.node),
                    fmt_weight(e.w)
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders an operation DD as a Graphviz `digraph` (quadrant edges
    /// labeled `00/01/10/11` plus weight).
    #[must_use]
    pub fn to_dot_matrix(&self, root: MEdge) -> String {
        let mut out = String::from("digraph mdd {\n  rankdir=TB;\n  root [shape=point];\n");
        let mut ids: FxHashMap<NodeId, usize> = FxHashMap::default();
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack = vec![root.node];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || ids.contains_key(&id) {
                continue;
            }
            ids.insert(id, order.len());
            order.push(id);
            let node = self.mnode(id);
            for e in node.edges {
                stack.push(e.node);
            }
        }
        out.push_str("  t [label=\"1\", shape=box];\n");
        for (id, i) in order.iter().map(|id| (*id, ids[id])) {
            let node = self.mnode(id);
            let _ = writeln!(out, "  n{i} [label=\"q{}\", shape=circle];", node.var);
        }
        let _ = writeln!(
            out,
            "  root -> {} [label=\"{}\"];",
            Self::dot_target(&ids, root.node),
            fmt_weight(root.w)
        );
        for (id, i) in order.iter().map(|id| (*id, ids[id])) {
            let node = self.mnode(id);
            for (q, e) in node.edges.iter().enumerate() {
                if e.is_zero(self.tolerance()) {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  n{i} -> {} [label=\"{}{} {}\"];",
                    Self::dot_target(&ids, e.node),
                    q >> 1,
                    q & 1,
                    fmt_weight(e.w)
                );
            }
        }
        out.push_str("}\n");
        out
    }

    fn dot_target(ids: &FxHashMap<NodeId, usize>, id: NodeId) -> String {
        if id.is_terminal() {
            "t".to_string()
        } else {
            format!("n{}", ids[&id])
        }
    }
}

fn fmt_weight(w: approxdd_complex::Cplx) -> String {
    if (w - approxdd_complex::Cplx::ONE).mag() < 1e-12 {
        String::new()
    } else {
        format!("{:.4}", w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_complex::Cplx;

    #[test]
    fn dot_contains_all_levels() {
        let mut p = Package::new();
        let v = p.basis_state(3, 5);
        let dot = p.to_dot(v);
        assert!(dot.starts_with("digraph dd {"));
        for q in ["q0", "q1", "q2"] {
            assert!(dot.contains(q), "missing {q} in:\n{dot}");
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_matrix_renders_gate() {
        let mut p = Package::new();
        let h = p
            .single_gate(2, 0, crate::gates::GateKind::H.matrix())
            .unwrap();
        let dot = p.to_dot_matrix(h);
        assert!(dot.contains("digraph mdd"));
        assert!(dot.contains("q1"));
    }

    #[test]
    fn weights_appear_on_edges() {
        let mut p = Package::new();
        let s = Cplx::FRAC_1_SQRT_2;
        let v = p.from_amplitudes(&[s, Cplx::ZERO, Cplx::ZERO, s]).unwrap();
        let dot = p.to_dot(v);
        assert!(dot.contains("0.7071"), "root weight rendered:\n{dot}");
    }
}

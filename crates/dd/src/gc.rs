//! Mark-and-sweep garbage collection.
//!
//! External roots are edges registered via [`Package::inc_ref`] /
//! [`Package::inc_ref_m`] (simulator state, cached gate DDs, the
//! package-internal identity cache). Everything unreachable from a root
//! is freed and its unique-table entry dropped; the compute tables are
//! cleared wholesale because their entries may reference freed nodes.

use crate::package::Package;

/// Statistics of one garbage-collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Vector nodes freed.
    pub vnodes_freed: usize,
    /// Matrix nodes freed.
    pub mnodes_freed: usize,
    /// Vector nodes remaining alive.
    pub vnodes_alive: usize,
    /// Matrix nodes remaining alive.
    pub mnodes_alive: usize,
}

impl Package {
    /// Runs a full mark-and-sweep collection and returns what was freed.
    ///
    /// Edges not registered as roots (and not reachable from one) become
    /// dangling; callers must re-register or forget them.
    pub fn collect_garbage(&mut self) -> GcStats {
        let span = approxdd_telemetry::Span::enter("dd.gc");
        self.stats.gc_runs += 1;

        // --- vector arena ---
        self.vnodes.clear_marks();
        let mut stack: Vec<u32> = self.vnodes.rooted_indices().collect();
        while let Some(idx) = stack.pop() {
            if !self.vnodes.mark(idx) {
                continue;
            }
            let node = *self.vnodes.get(idx);
            for e in node.edges {
                if !e.node.is_terminal() && !self.vnodes.is_marked(e.node.0) {
                    stack.push(e.node.0);
                }
            }
        }
        // Sweep with unique-table eviction. Collect victims first to
        // avoid borrowing conflicts.
        let mut v_victims: Vec<(u32, crate::node::VNode)> = Vec::new();
        let vnodes_freed = {
            let v = &mut v_victims;
            self.vnodes.sweep(|idx, node| v.push((idx, *node)))
        };
        for (idx, node) in v_victims {
            self.remove_vnode_from_unique(idx, &node);
        }

        // --- matrix arena ---
        self.mnodes.clear_marks();
        let mut stack: Vec<u32> = self.mnodes.rooted_indices().collect();
        while let Some(idx) = stack.pop() {
            if !self.mnodes.mark(idx) {
                continue;
            }
            let node = *self.mnodes.get(idx);
            for e in node.edges {
                if !e.node.is_terminal() && !self.mnodes.is_marked(e.node.0) {
                    stack.push(e.node.0);
                }
            }
        }
        let mut m_victims: Vec<(u32, crate::node::MNode)> = Vec::new();
        let mnodes_freed = {
            let m = &mut m_victims;
            self.mnodes.sweep(|idx, node| m.push((idx, *node)))
        };
        for (idx, node) in m_victims {
            self.remove_mnode_from_unique(idx, &node);
        }

        // Memoized results may point at freed nodes.
        self.clear_compute_tables();

        self.stats.gc_freed += (vnodes_freed + mnodes_freed) as u64;
        let _ = span.finish();
        approxdd_telemetry::count("approxdd_dd_gc_runs_total", 1);
        approxdd_telemetry::count(
            "approxdd_dd_gc_freed_nodes_total",
            (vnodes_freed + mnodes_freed) as u64,
        );
        GcStats {
            vnodes_freed,
            mnodes_freed,
            vnodes_alive: self.vnodes.alive_count(),
            mnodes_alive: self.mnodes.alive_count(),
        }
    }

    /// Total alive vector nodes in the arena (distinct from
    /// [`Package::vsize`], which counts one DD's reachable set).
    #[must_use]
    pub fn alive_vnodes(&self) -> usize {
        self.vnodes.alive_count()
    }

    /// Total alive matrix nodes in the arena.
    #[must_use]
    pub fn alive_mnodes(&self) -> usize {
        self.mnodes.alive_count()
    }

    /// Alive nodes a GC pass can actually inspect and free: everything
    /// in the private delta layer. Without a snapshot this equals
    /// `alive_vnodes() + alive_mnodes()`; with one, the pinned frozen
    /// prefix is excluded so a large snapshot does not drive the GC
    /// trigger by its mere presence.
    #[must_use]
    pub fn collectable_nodes(&self) -> usize {
        self.vnodes.delta_alive_count() + self.mnodes.delta_alive_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::VEdge;
    use crate::gates::GateKind;

    #[test]
    fn unrooted_nodes_are_collected() {
        let mut p = Package::new();
        let kept = p.basis_state(4, 3);
        p.inc_ref(kept);
        let _garbage = p.basis_state(4, 12); // not rooted
        let before = p.alive_vnodes();
        assert_eq!(before, 8);

        let stats = p.collect_garbage();
        assert!(stats.vnodes_freed > 0);
        assert_eq!(stats.vnodes_alive, 4);
        // The kept state is still intact.
        let amp = p.amplitude(kept, 3);
        assert!((amp.mag2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_subgraphs_survive_partial_release() {
        let mut p = Package::new();
        let a = p.basis_state(3, 1);
        let b = p.basis_state(3, 1); // same DD
        assert_eq!(a.node, b.node);
        p.inc_ref(a);
        p.inc_ref(b);
        p.dec_ref(a);
        let stats = p.collect_garbage();
        assert_eq!(stats.vnodes_alive, 3, "still rooted via b");
        p.dec_ref(b);
        let stats = p.collect_garbage();
        assert_eq!(stats.vnodes_alive, 0);
    }

    #[test]
    fn identity_cache_survives_gc() {
        let mut p = Package::new();
        let id = p.identity(3);
        let _ = p.collect_garbage();
        let id2 = p.identity(3);
        assert_eq!(id, id2);
        // The cached identity is still usable.
        let v = p.basis_state(3, 5);
        let r = p.apply(id2, v);
        assert!((p.fidelity(r, v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_are_rebuildable_after_gc() {
        let mut p = Package::new();
        let v = p.basis_state(5, 9);
        // Not rooted: collected.
        let _ = p.collect_garbage();
        assert_eq!(p.alive_vnodes(), 0);
        // Rebuilding produces a working DD (slot reuse must be clean).
        let v2 = p.basis_state(5, 9);
        assert!((p.amplitude(v2, 9).mag2() - 1.0).abs() < 1e-12);
        let _ = v;
    }

    #[test]
    fn gate_roots_protect_matrix_nodes() {
        let mut p = Package::new();
        let h = p.single_gate(2, 0, GateKind::H.matrix()).unwrap();
        p.inc_ref_m(h);
        let _tmp = p.single_gate(2, 1, GateKind::X.matrix()).unwrap();
        let stats = p.collect_garbage();
        assert!(stats.mnodes_alive >= 2, "H gate survives");
        let v = p.zero_state(2);
        let r = p.apply(h, v);
        let amps = p.to_amplitudes(r, 2).unwrap();
        assert!((amps[0].mag2() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gc_updates_stats() {
        let mut p = Package::new();
        let _ = p.basis_state(3, 0);
        let _ = p.collect_garbage();
        assert_eq!(p.stats().gc_runs, 1);
        assert!(p.stats().gc_freed >= 3);
        let _ = VEdge::ZERO;
    }
}

//! Struct-of-arrays slotted arena with free list, reference counts and
//! GC marks, optionally layered over an immutable frozen prefix.
//!
//! Nodes are identified by `u32` slot indices ([`crate::NodeId`]). The
//! reference count only tracks *external* roots (state vectors, cached
//! gates held by a simulator); internal parent→child references are
//! reconstructed by the mark phase of [`crate::Package::collect_garbage`].
//!
//! The arena stores node payloads and GC bookkeeping **separately**
//! (struct-of-arrays): payloads in one dense `Vec<T>`, reference counts
//! in a parallel `Vec<u32>`, and the `alive`/`mark` flags packed into
//! one bit each of two word arrays. The hot path (operation recursion
//! reading node payloads) therefore never drags `rc`/`alive`/`mark`
//! bytes through the cache, and the GC phases become word-wide:
//! clearing marks is a `memset`, and the sweep skips 64 slots at a time
//! wherever `alive & !mark` is zero.
//!
//! # Copy-on-write snapshots
//!
//! An arena can be built over a [`FrozenArena`]: an `Arc`-shared,
//! immutable prefix of slots whose ids index strictly below a
//! **watermark**. The private delta layer allocates at or above the
//! watermark, so a frozen node id means the same payload in every
//! arena sharing the prefix. Frozen slots are permanently pinned:
//! `inc_rc`/`dec_rc` are no-ops below the watermark, `mark` reports
//! them as already visited (frozen nodes never point into the delta,
//! so the mark phase need not descend past the watermark), and `sweep`
//! scans only the delta words — a frozen node can never be freed.

use std::sync::Arc;

/// A packed bitset over slot indices, one bit per slot.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    #[inline]
    fn ensure(&mut self, idx: usize) {
        let word = idx / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Zeroes every bit (word-wide memset).
    fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

/// The immutable frozen prefix of an [`Arena`]: slot payloads and
/// aliveness for ids below the watermark, shared across arenas via
/// `Arc`. Built once by [`Arena::freeze`]; never mutated afterwards.
#[derive(Debug, Default)]
pub(crate) struct FrozenArena<T> {
    items: Vec<T>,
    alive: BitSet,
    alive_count: usize,
}

impl<T> FrozenArena<T> {
    /// Alive slots in the frozen prefix.
    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Total frozen slots — the watermark of every delta arena layered
    /// over this prefix.
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Arena<T> {
    /// Immutable shared prefix (ids below `watermark`), if any.
    frozen: Option<Arc<FrozenArena<T>>>,
    /// First id owned by the delta layer. 0 without a frozen prefix.
    watermark: u32,
    /// Delta node payloads (SoA: nothing but payload bytes on the hot
    /// path); slot `i` holds id `watermark + i`.
    items: Vec<T>,
    /// External-root reference counts, parallel to `items`.
    rc: Vec<u32>,
    /// One bit per delta slot: is the slot currently allocated?
    alive: BitSet,
    /// One bit per delta slot: GC mark (valid between `clear_marks` and
    /// `sweep`).
    mark: BitSet,
    /// Freed delta slots, as absolute ids (always ≥ `watermark`).
    free: Vec<u32>,
    /// Alive delta slots (excludes the frozen prefix).
    alive_count: usize,
    /// High-water mark of simultaneously alive delta nodes.
    peak: usize,
}

impl<T> Arena<T> {
    pub(crate) fn new() -> Self {
        Self {
            frozen: None,
            watermark: 0,
            items: Vec::new(),
            rc: Vec::new(),
            alive: BitSet::default(),
            mark: BitSet::default(),
            free: Vec::new(),
            alive_count: 0,
            peak: 0,
        }
    }

    /// An empty delta arena layered over a shared frozen prefix. Every
    /// id below the prefix length resolves into the shared payloads;
    /// allocation starts at the watermark.
    pub(crate) fn with_frozen(frozen: Arc<FrozenArena<T>>) -> Self {
        let watermark = u32::try_from(frozen.len())
            .ok()
            .filter(|&w| w < u32::MAX - 1)
            .expect("frozen prefix exceeds u32 slot capacity");
        Self {
            frozen: Some(frozen),
            watermark,
            items: Vec::new(),
            rc: Vec::new(),
            alive: BitSet::default(),
            mark: BitSet::default(),
            free: Vec::new(),
            alive_count: 0,
            peak: 0,
        }
    }

    /// Converts this arena into a frozen prefix. Freed slots stay dead
    /// (they are never resurrected: delta layers allocate only above
    /// the watermark), and reference counts are dropped — frozen slots
    /// are pinned by construction.
    ///
    /// Only a base arena can be frozen; re-freezing an arena that
    /// already layers over a prefix would need a merge and is not
    /// supported.
    pub(crate) fn freeze(self) -> FrozenArena<T> {
        assert!(
            self.frozen.is_none(),
            "cannot freeze an arena layered over an existing snapshot"
        );
        FrozenArena {
            items: self.items,
            alive: self.alive,
            alive_count: self.alive_count,
        }
    }

    /// First id owned by the delta layer (0 without a frozen prefix).
    pub(crate) fn watermark(&self) -> u32 {
        self.watermark
    }

    /// Alive slots in the frozen prefix (0 without one).
    pub(crate) fn frozen_count(&self) -> usize {
        self.frozen.as_ref().map_or(0, |f| f.alive_count)
    }

    /// Allocates a slot for `item`, reusing a freed delta slot when
    /// available. Never allocates below the watermark.
    pub(crate) fn alloc(&mut self, item: T) -> u32 {
        self.alive_count += 1;
        self.peak = self.peak.max(self.alive_count);
        if let Some(idx) = self.free.pop() {
            let i = (idx - self.watermark) as usize;
            self.items[i] = item;
            self.rc[i] = 0;
            self.alive.set(i);
            self.mark.clear(i);
            idx
        } else {
            // u32::MAX is the terminal sentinel and u32::MAX - 1 a
            // unique-table sentinel; stay strictly below both.
            let idx = u32::try_from(self.items.len())
                .ok()
                .and_then(|i| i.checked_add(self.watermark))
                .filter(|&i| i < u32::MAX - 1)
                .expect("arena exceeded u32 slot capacity");
            self.items.push(item);
            self.rc.push(0);
            let i = (idx - self.watermark) as usize;
            self.alive.ensure(i);
            self.mark.ensure(i);
            self.alive.set(i);
            idx
        }
    }

    #[inline]
    pub(crate) fn get(&self, idx: u32) -> &T {
        if idx < self.watermark {
            let frozen = self.frozen.as_ref().expect("watermark implies a prefix");
            debug_assert!(
                frozen.alive.get(idx as usize),
                "access to dead frozen slot {idx}"
            );
            &frozen.items[idx as usize]
        } else {
            let i = (idx - self.watermark) as usize;
            debug_assert!(self.alive.get(i), "access to freed arena slot {idx}");
            &self.items[i]
        }
    }

    /// Pins a slot as an external root. No-op below the watermark:
    /// frozen slots are permanently pinned.
    pub(crate) fn inc_rc(&mut self, idx: u32) {
        if idx < self.watermark {
            return;
        }
        let i = (idx - self.watermark) as usize;
        debug_assert!(self.alive.get(i));
        self.rc[i] += 1;
    }

    /// Releases one external root. No-op below the watermark.
    pub(crate) fn dec_rc(&mut self, idx: u32) {
        if idx < self.watermark {
            return;
        }
        let i = (idx - self.watermark) as usize;
        debug_assert!(self.alive.get(i));
        debug_assert!(self.rc[i] > 0, "rc underflow on arena slot {idx}");
        let rc = &mut self.rc[i];
        *rc = rc.saturating_sub(1);
    }

    #[allow(dead_code)] // diagnostics / debug assertions
    pub(crate) fn rc(&self, idx: u32) -> u32 {
        if idx < self.watermark {
            // Frozen slots are pinned; report one permanent root.
            1
        } else {
            self.rc[(idx - self.watermark) as usize]
        }
    }

    /// Alive slots across both tiers (frozen prefix + delta).
    pub(crate) fn alive_count(&self) -> usize {
        self.frozen_count() + self.alive_count
    }

    /// Alive slots in the delta layer only — what a GC pass can
    /// actually inspect and free.
    pub(crate) fn delta_alive_count(&self) -> usize {
        self.alive_count
    }

    pub(crate) fn peak_count(&self) -> usize {
        self.frozen_count() + self.peak
    }

    /// Total slots (alive + freed) across both tiers, i.e. the arena's
    /// addressable footprint.
    #[allow(dead_code)] // diagnostics
    pub(crate) fn capacity(&self) -> usize {
        self.watermark as usize + self.items.len()
    }

    /// Clears all delta marks (one memset over the mark words). Pair
    /// with [`Arena::mark`] and [`Arena::sweep`].
    pub(crate) fn clear_marks(&mut self) {
        self.mark.clear_all();
    }

    /// Marks a slot; returns whether this was the first visit. Frozen
    /// slots report `false` (never a first visit): they are always
    /// reachable and never point into the delta, so the mark phase
    /// stops at the watermark.
    pub(crate) fn mark(&mut self, idx: u32) -> bool {
        if idx < self.watermark {
            return false;
        }
        let i = (idx - self.watermark) as usize;
        debug_assert!(self.alive.get(i));
        let was = self.mark.get(i);
        self.mark.set(i);
        !was
    }

    pub(crate) fn is_marked(&self, idx: u32) -> bool {
        if idx < self.watermark {
            return true;
        }
        self.mark.get((idx - self.watermark) as usize)
    }

    /// Iterates the absolute ids of alive delta slots with a positive
    /// reference count (the GC roots). The frozen prefix never appears:
    /// it is pinned wholesale, not rooted.
    pub(crate) fn rooted_indices(&self) -> impl Iterator<Item = u32> + '_ {
        let watermark = self.watermark;
        self.rc
            .iter()
            .enumerate()
            .filter(|&(i, &rc)| rc > 0 && self.alive.get(i))
            .map(move |(i, _)| i as u32 + watermark)
    }

    /// Frees every alive-but-unmarked **delta** slot, invoking `on_free`
    /// with absolute ids (so the caller can drop unique-table entries).
    /// Returns the number of freed slots. The frozen prefix is never
    /// scanned — the watermark is the sweep's hard floor.
    ///
    /// The scan is word-wide: 64 slots whose `alive & !mark` word is
    /// zero are skipped with a single compare.
    pub(crate) fn sweep(&mut self, mut on_free: impl FnMut(u32, &T)) -> usize {
        let mut freed = 0;
        for w in 0..self.alive.words.len() {
            let mut dead = self.alive.words[w] & !self.mark.words.get(w).copied().unwrap_or(0);
            if dead == 0 {
                continue;
            }
            while dead != 0 {
                let bit = dead.trailing_zeros() as usize;
                dead &= dead - 1;
                let i = w * 64 + bit;
                on_free(i as u32 + self.watermark, &self.items[i]);
                self.alive.words[w] &= !(1u64 << bit);
                self.rc[i] = 0;
                self.free.push(i as u32 + self.watermark);
                freed += 1;
            }
        }
        self.alive_count -= freed;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(20);
        assert_ne!(x, y);
        assert_eq!(a.alive_count(), 2);

        // Free everything (nothing rooted, nothing marked).
        a.clear_marks();
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 2);
        assert_eq!(a.alive_count(), 0);

        let z = a.alloc(30);
        assert!(z == x || z == y, "freed slot should be reused");
        assert_eq!(*a.get(z), 30);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn rc_protects_from_sweep() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        a.inc_rc(x);

        a.clear_marks();
        // Mark phase: roots are rc>0 slots.
        let roots: Vec<u32> = a.rooted_indices().collect();
        assert_eq!(roots, vec![x]);
        for r in roots {
            a.mark(r);
        }
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 1);
        assert_eq!(*a.get(x), 1);
        assert_eq!(a.alive_count(), 1);
        let _ = y; // y was swept
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a: Arena<u8> = Arena::new();
        for i in 0..5 {
            a.alloc(i);
        }
        a.clear_marks();
        a.sweep(|_, _| {});
        a.alloc(9);
        assert_eq!(a.peak_count(), 5);
        assert_eq!(a.alive_count(), 1);
    }

    #[test]
    fn mark_reports_first_visit() {
        let mut a: Arena<u8> = Arena::new();
        let x = a.alloc(0);
        a.clear_marks();
        assert!(a.mark(x));
        assert!(!a.mark(x));
        assert!(a.is_marked(x));
    }

    #[test]
    fn frozen_prefix_resolves_below_watermark_and_allocs_above() {
        let mut base: Arena<u64> = Arena::new();
        for i in 0..10 {
            base.alloc(i * 100);
        }
        let frozen = Arc::new(base.freeze());
        let mut delta: Arena<u64> = Arena::with_frozen(Arc::clone(&frozen));
        assert_eq!(delta.watermark(), 10);
        assert_eq!(delta.frozen_count(), 10);
        assert_eq!(delta.alive_count(), 10);
        assert_eq!(*delta.get(3), 300);

        let id = delta.alloc(7777);
        assert!(id >= delta.watermark(), "delta alloc below the watermark");
        assert_eq!(*delta.get(id), 7777);
        assert_eq!(delta.alive_count(), 11);
        assert_eq!(delta.delta_alive_count(), 1);

        // Two deltas over the same prefix see the same frozen payloads.
        let other: Arena<u64> = Arena::with_frozen(frozen);
        assert_eq!(*other.get(3), 300);
    }

    #[test]
    fn sweep_never_frees_frozen_slots() {
        let mut base: Arena<u64> = Arena::new();
        for i in 0..70 {
            base.alloc(i); // spans a word boundary
        }
        let frozen = Arc::new(base.freeze());
        let mut delta: Arena<u64> = Arena::with_frozen(frozen);
        let a = delta.alloc(1000);
        let b = delta.alloc(2000);
        delta.inc_rc(a);
        // Frozen rc ops are pinned no-ops.
        delta.inc_rc(5);
        delta.dec_rc(5);
        assert_eq!(delta.rc(5), 1);

        delta.clear_marks();
        assert!(delta.is_marked(5), "frozen slots read as already marked");
        assert!(!delta.mark(5), "marking a frozen slot is never first visit");
        let roots: Vec<u32> = delta.rooted_indices().collect();
        assert_eq!(roots, vec![a]);
        for r in roots {
            delta.mark(r);
        }
        let mut swept = Vec::new();
        let freed = delta.sweep(|idx, _| swept.push(idx));
        assert_eq!(freed, 1);
        assert_eq!(swept, vec![b]);
        assert!(swept.iter().all(|&i| i >= delta.watermark()));
        // Frozen payloads and the rooted delta node survive.
        assert_eq!(*delta.get(42), 42);
        assert_eq!(*delta.get(a), 1000);
        assert_eq!(delta.alive_count(), 71);

        // The freed delta slot is reused at the same absolute id.
        let c = delta.alloc(3000);
        assert_eq!(c, b);
        assert_eq!(*delta.get(c), 3000);
    }

    #[test]
    fn sweep_across_word_boundaries() {
        // >64 slots so the word-wide sweep crosses word boundaries;
        // keep every third slot rooted and verify exactly the rest go.
        let mut a: Arena<u32> = Arena::new();
        let ids: Vec<u32> = (0..200).map(|i| a.alloc(i)).collect();
        for id in ids.iter().step_by(3) {
            a.inc_rc(*id);
        }
        a.clear_marks();
        let roots: Vec<u32> = a.rooted_indices().collect();
        for r in &roots {
            a.mark(*r);
        }
        let mut swept = Vec::new();
        let freed = a.sweep(|idx, _| swept.push(idx));
        assert_eq!(freed, 200 - roots.len());
        assert_eq!(a.alive_count(), roots.len());
        for id in ids.iter().step_by(3) {
            assert_eq!(*a.get(*id), *id); // payload intact
        }
        for idx in swept {
            assert!(idx % 3 != 0, "rooted slot {idx} was swept");
        }
    }
}

//! Struct-of-arrays slotted arena with free list, reference counts and
//! GC marks.
//!
//! Nodes are identified by `u32` slot indices ([`crate::NodeId`]). The
//! reference count only tracks *external* roots (state vectors, cached
//! gates held by a simulator); internal parent→child references are
//! reconstructed by the mark phase of [`crate::Package::collect_garbage`].
//!
//! The arena stores node payloads and GC bookkeeping **separately**
//! (struct-of-arrays): payloads in one dense `Vec<T>`, reference counts
//! in a parallel `Vec<u32>`, and the `alive`/`mark` flags packed into
//! one bit each of two word arrays. The hot path (operation recursion
//! reading node payloads) therefore never drags `rc`/`alive`/`mark`
//! bytes through the cache, and the GC phases become word-wide:
//! clearing marks is a `memset`, and the sweep skips 64 slots at a time
//! wherever `alive & !mark` is zero.

/// A packed bitset over slot indices, one bit per slot.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    #[inline]
    fn ensure(&mut self, idx: usize) {
        let word = idx / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Zeroes every bit (word-wide memset).
    fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Arena<T> {
    /// Node payloads (SoA: nothing but payload bytes on the hot path).
    items: Vec<T>,
    /// External-root reference counts, parallel to `items`.
    rc: Vec<u32>,
    /// One bit per slot: is the slot currently allocated?
    alive: BitSet,
    /// One bit per slot: GC mark (valid between `clear_marks` and
    /// `sweep`).
    mark: BitSet,
    free: Vec<u32>,
    alive_count: usize,
    /// High-water mark of simultaneously alive nodes.
    peak: usize,
}

impl<T> Arena<T> {
    pub(crate) fn new() -> Self {
        Self {
            items: Vec::new(),
            rc: Vec::new(),
            alive: BitSet::default(),
            mark: BitSet::default(),
            free: Vec::new(),
            alive_count: 0,
            peak: 0,
        }
    }

    /// Allocates a slot for `item`, reusing a freed slot when available.
    pub(crate) fn alloc(&mut self, item: T) -> u32 {
        self.alive_count += 1;
        self.peak = self.peak.max(self.alive_count);
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.items[i] = item;
            self.rc[i] = 0;
            self.alive.set(i);
            self.mark.clear(i);
            idx
        } else {
            // u32::MAX is the terminal sentinel and u32::MAX - 1 a
            // unique-table sentinel; stay strictly below both.
            let idx = u32::try_from(self.items.len())
                .ok()
                .filter(|&i| i < u32::MAX - 1)
                .expect("arena exceeded u32 slot capacity");
            self.items.push(item);
            self.rc.push(0);
            let i = idx as usize;
            self.alive.ensure(i);
            self.mark.ensure(i);
            self.alive.set(i);
            idx
        }
    }

    #[inline]
    pub(crate) fn get(&self, idx: u32) -> &T {
        debug_assert!(
            self.alive.get(idx as usize),
            "access to freed arena slot {idx}"
        );
        &self.items[idx as usize]
    }

    pub(crate) fn inc_rc(&mut self, idx: u32) {
        debug_assert!(self.alive.get(idx as usize));
        self.rc[idx as usize] += 1;
    }

    pub(crate) fn dec_rc(&mut self, idx: u32) {
        debug_assert!(self.alive.get(idx as usize));
        debug_assert!(
            self.rc[idx as usize] > 0,
            "rc underflow on arena slot {idx}"
        );
        let rc = &mut self.rc[idx as usize];
        *rc = rc.saturating_sub(1);
    }

    #[allow(dead_code)] // diagnostics / debug assertions
    pub(crate) fn rc(&self, idx: u32) -> u32 {
        self.rc[idx as usize]
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.alive_count
    }

    pub(crate) fn peak_count(&self) -> usize {
        self.peak
    }

    /// Total slots (alive + freed), i.e. the arena's memory footprint.
    #[allow(dead_code)] // diagnostics
    pub(crate) fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Clears all marks (one memset over the mark words). Pair with
    /// [`Arena::mark`] and [`Arena::sweep`].
    pub(crate) fn clear_marks(&mut self) {
        self.mark.clear_all();
    }

    /// Marks a slot; returns whether this was the first visit.
    pub(crate) fn mark(&mut self, idx: u32) -> bool {
        debug_assert!(self.alive.get(idx as usize));
        let was = self.mark.get(idx as usize);
        self.mark.set(idx as usize);
        !was
    }

    pub(crate) fn is_marked(&self, idx: u32) -> bool {
        self.mark.get(idx as usize)
    }

    /// Iterates the indices of alive slots with a positive reference
    /// count (the GC roots).
    pub(crate) fn rooted_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.rc
            .iter()
            .enumerate()
            .filter(|&(i, &rc)| rc > 0 && self.alive.get(i))
            .map(|(i, _)| i as u32)
    }

    /// Frees every alive-but-unmarked slot, invoking `on_free` for each
    /// (so the caller can drop unique-table entries). Returns the number
    /// of freed slots.
    ///
    /// The scan is word-wide: 64 slots whose `alive & !mark` word is
    /// zero are skipped with a single compare.
    pub(crate) fn sweep(&mut self, mut on_free: impl FnMut(u32, &T)) -> usize {
        let mut freed = 0;
        for w in 0..self.alive.words.len() {
            let mut dead = self.alive.words[w] & !self.mark.words.get(w).copied().unwrap_or(0);
            if dead == 0 {
                continue;
            }
            while dead != 0 {
                let bit = dead.trailing_zeros() as usize;
                dead &= dead - 1;
                let i = w * 64 + bit;
                on_free(i as u32, &self.items[i]);
                self.alive.words[w] &= !(1u64 << bit);
                self.rc[i] = 0;
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.alive_count -= freed;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(20);
        assert_ne!(x, y);
        assert_eq!(a.alive_count(), 2);

        // Free everything (nothing rooted, nothing marked).
        a.clear_marks();
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 2);
        assert_eq!(a.alive_count(), 0);

        let z = a.alloc(30);
        assert!(z == x || z == y, "freed slot should be reused");
        assert_eq!(*a.get(z), 30);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn rc_protects_from_sweep() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        a.inc_rc(x);

        a.clear_marks();
        // Mark phase: roots are rc>0 slots.
        let roots: Vec<u32> = a.rooted_indices().collect();
        assert_eq!(roots, vec![x]);
        for r in roots {
            a.mark(r);
        }
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 1);
        assert_eq!(*a.get(x), 1);
        assert_eq!(a.alive_count(), 1);
        let _ = y; // y was swept
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a: Arena<u8> = Arena::new();
        for i in 0..5 {
            a.alloc(i);
        }
        a.clear_marks();
        a.sweep(|_, _| {});
        a.alloc(9);
        assert_eq!(a.peak_count(), 5);
        assert_eq!(a.alive_count(), 1);
    }

    #[test]
    fn mark_reports_first_visit() {
        let mut a: Arena<u8> = Arena::new();
        let x = a.alloc(0);
        a.clear_marks();
        assert!(a.mark(x));
        assert!(!a.mark(x));
        assert!(a.is_marked(x));
    }

    #[test]
    fn sweep_across_word_boundaries() {
        // >64 slots so the word-wide sweep crosses word boundaries;
        // keep every third slot rooted and verify exactly the rest go.
        let mut a: Arena<u32> = Arena::new();
        let ids: Vec<u32> = (0..200).map(|i| a.alloc(i)).collect();
        for id in ids.iter().step_by(3) {
            a.inc_rc(*id);
        }
        a.clear_marks();
        let roots: Vec<u32> = a.rooted_indices().collect();
        for r in &roots {
            a.mark(*r);
        }
        let mut swept = Vec::new();
        let freed = a.sweep(|idx, _| swept.push(idx));
        assert_eq!(freed, 200 - roots.len());
        assert_eq!(a.alive_count(), roots.len());
        for id in ids.iter().step_by(3) {
            assert_eq!(*a.get(*id), *id); // payload intact
        }
        for idx in swept {
            assert!(idx % 3 != 0, "rooted slot {idx} was swept");
        }
    }
}

//! Slotted arena with free list, reference counts and GC marks.
//!
//! Nodes are identified by `u32` slot indices ([`crate::NodeId`]). The
//! reference count only tracks *external* roots (state vectors, cached
//! gates held by a simulator); internal parent→child references are
//! reconstructed by the mark phase of [`crate::Package::collect_garbage`].

#[derive(Debug, Clone)]
struct Slot<T> {
    item: T,
    rc: u32,
    alive: bool,
    mark: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    alive: usize,
    /// High-water mark of simultaneously alive nodes.
    peak: usize,
}

impl<T> Arena<T> {
    pub(crate) fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            alive: 0,
            peak: 0,
        }
    }

    /// Allocates a slot for `item`, reusing a freed slot when available.
    pub(crate) fn alloc(&mut self, item: T) -> u32 {
        self.alive += 1;
        self.peak = self.peak.max(self.alive);
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            slot.item = item;
            slot.rc = 0;
            slot.alive = true;
            slot.mark = false;
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena exceeded u32 capacity");
            self.slots.push(Slot {
                item,
                rc: 0,
                alive: true,
                mark: false,
            });
            idx
        }
    }

    pub(crate) fn get(&self, idx: u32) -> &T {
        let slot = &self.slots[idx as usize];
        debug_assert!(slot.alive, "access to freed arena slot {idx}");
        &slot.item
    }

    pub(crate) fn inc_rc(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.alive);
        slot.rc += 1;
    }

    pub(crate) fn dec_rc(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.alive);
        debug_assert!(slot.rc > 0, "rc underflow on arena slot {idx}");
        slot.rc = slot.rc.saturating_sub(1);
    }

    #[allow(dead_code)] // diagnostics / debug assertions
    pub(crate) fn rc(&self, idx: u32) -> u32 {
        self.slots[idx as usize].rc
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.alive
    }

    pub(crate) fn peak_count(&self) -> usize {
        self.peak
    }

    /// Total slots (alive + freed), i.e. the arena's memory footprint.
    #[allow(dead_code)] // diagnostics
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Clears all marks. Pair with [`Arena::mark`] and [`Arena::sweep`].
    pub(crate) fn clear_marks(&mut self) {
        for slot in &mut self.slots {
            slot.mark = false;
        }
    }

    pub(crate) fn mark(&mut self, idx: u32) -> bool {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.alive);
        let was = slot.mark;
        slot.mark = true;
        !was
    }

    pub(crate) fn is_marked(&self, idx: u32) -> bool {
        self.slots[idx as usize].mark
    }

    /// Iterates the indices of alive slots with a positive reference count
    /// (the GC roots).
    pub(crate) fn rooted_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.rc > 0)
            .map(|(i, _)| i as u32)
    }

    /// Frees every alive-but-unmarked slot, invoking `on_free` for each
    /// (so the caller can drop unique-table entries). Returns the number
    /// of freed slots.
    pub(crate) fn sweep(&mut self, mut on_free: impl FnMut(u32, &T)) -> usize {
        let mut freed = 0;
        for i in 0..self.slots.len() {
            let slot = &self.slots[i];
            if slot.alive && !slot.mark {
                on_free(i as u32, &slot.item);
                let slot = &mut self.slots[i];
                slot.alive = false;
                slot.rc = 0;
                self.free.push(i as u32);
                freed += 1;
            }
        }
        self.alive -= freed;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(20);
        assert_ne!(x, y);
        assert_eq!(a.alive_count(), 2);

        // Free everything (nothing rooted, nothing marked).
        a.clear_marks();
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 2);
        assert_eq!(a.alive_count(), 0);

        let z = a.alloc(30);
        assert!(z == x || z == y, "freed slot should be reused");
        assert_eq!(*a.get(z), 30);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn rc_protects_from_sweep() {
        let mut a: Arena<u64> = Arena::new();
        let x = a.alloc(1);
        let y = a.alloc(2);
        a.inc_rc(x);

        a.clear_marks();
        // Mark phase: roots are rc>0 slots.
        let roots: Vec<u32> = a.rooted_indices().collect();
        assert_eq!(roots, vec![x]);
        for r in roots {
            a.mark(r);
        }
        let freed = a.sweep(|_, _| {});
        assert_eq!(freed, 1);
        assert_eq!(*a.get(x), 1);
        assert_eq!(a.alive_count(), 1);
        let _ = y; // y was swept
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a: Arena<u8> = Arena::new();
        for i in 0..5 {
            a.alloc(i);
        }
        a.clear_marks();
        a.sweep(|_, _| {});
        a.alloc(9);
        assert_eq!(a.peak_count(), 5);
        assert_eq!(a.alive_count(), 1);
    }

    #[test]
    fn mark_reports_first_visit() {
        let mut a: Arena<u8> = Arena::new();
        let x = a.alloc(0);
        a.clear_marks();
        assert!(a.mark(x));
        assert!(!a.mark(x));
        assert!(a.is_marked(x));
    }
}

//! Node contribution analysis — Definition 2 of the paper.
//!
//! The *contribution* of a node is the sum of squared magnitudes of all
//! amplitudes whose root-to-terminal paths pass through that node.
//! Because this crate normalizes vector nodes to unit subtree norm, the
//! contribution of a node equals the accumulated squared path weight
//! from the root — computable in one topological (level-by-level) pass.
//!
//! For a unit-norm state the contributions on each level sum to 1
//! (asserted by the paper after Definition 2 and property-tested here).

use crate::edge::{NodeId, VEdge};
use crate::fasthash::FxHashMap;
use crate::package::Package;

/// The result of a contribution analysis: per-node contributions plus
/// the level structure of the analyzed DD.
///
/// Obtain via [`Package::contributions`].
#[derive(Debug, Clone)]
pub struct ContributionMap {
    /// Contribution per node id.
    contrib: FxHashMap<NodeId, f64>,
    /// Nodes grouped by level (`levels[var]`), each level sorted by id
    /// for determinism.
    levels: Vec<Vec<NodeId>>,
}

impl ContributionMap {
    /// The contribution of `node`, or 0 if the node is not part of the
    /// analyzed diagram.
    #[must_use]
    pub fn contribution(&self, node: NodeId) -> f64 {
        self.contrib.get(&node).copied().unwrap_or(0.0)
    }

    /// Number of distinct non-terminal nodes in the analyzed diagram.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.contrib.len()
    }

    /// Nodes on level `var` (empty for out-of-range levels).
    #[must_use]
    pub fn level(&self, var: usize) -> &[NodeId] {
        self.levels.get(var).map_or(&[], Vec::as_slice)
    }

    /// Number of levels (the qubit count of the analyzed state).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Sum of contributions on level `var`; equals the squared norm of
    /// the analyzed state (1 for a unit state) for every populated level.
    #[must_use]
    pub fn level_sum(&self, var: usize) -> f64 {
        self.level(var).iter().map(|n| self.contribution(*n)).sum()
    }

    /// All `(node, contribution)` pairs sorted ascending by contribution
    /// (ties by node id, for determinism). The greedy removal-budget
    /// selection of Section IV-A consumes this order.
    #[must_use]
    pub fn sorted_ascending(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.contrib.iter().map(|(n, c)| (*n, *c)).collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }

    /// Iterates over `(node, contribution)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.contrib.iter().map(|(n, c)| (*n, *c))
    }
}

impl Package {
    /// Computes the contribution (Definition 2) of every node reachable
    /// from `root`.
    ///
    /// The analysis assumes `root` represents a unit-norm state; for a
    /// general vector the "contributions" are scaled by the squared norm.
    #[must_use]
    pub fn contributions(&self, root: VEdge) -> ContributionMap {
        let mut contrib: FxHashMap<NodeId, f64> = FxHashMap::default();
        let n_levels = self.vlevel(root);
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); n_levels];
        if root.node.is_terminal() {
            return ContributionMap { contrib, levels };
        }

        // Discover nodes per level.
        {
            let mut stack = vec![root.node];
            let mut seen: FxHashMap<NodeId, ()> = FxHashMap::default();
            while let Some(id) = stack.pop() {
                if id.is_terminal() || seen.insert(id, ()).is_some() {
                    continue;
                }
                let node = self.vnode(id);
                levels[usize::from(node.var)].push(id);
                stack.push(node.edges[0].node);
                stack.push(node.edges[1].node);
            }
        }
        for level in &mut levels {
            level.sort_unstable();
        }

        // Top-down accumulation of squared path weights. Each node's
        // subtree has unit norm (normalization invariant), so the
        // accumulated upstream mass *is* the contribution.
        contrib.insert(root.node, root.w.mag2());
        for var in (0..n_levels).rev() {
            for &id in &levels[var] {
                let up = contrib.get(&id).copied().unwrap_or(0.0);
                let node = self.vnode(id);
                for child in node.edges {
                    if child.node.is_terminal() {
                        continue;
                    }
                    *contrib.entry(child.node).or_insert(0.0) += up * child.w.mag2();
                }
            }
        }

        ContributionMap { contrib, levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_complex::Cplx;

    /// Builds the example state of Fig. 1a of the paper:
    /// [1/√10, 0, 0, −1/√10, 0, 2/√10, 0, 2/√10].
    fn paper_state(p: &mut Package) -> VEdge {
        let s = 10f64.sqrt().recip();
        let amps = [
            Cplx::real(s),
            Cplx::ZERO,
            Cplx::ZERO,
            Cplx::real(-s),
            Cplx::ZERO,
            Cplx::real(2.0 * s),
            Cplx::ZERO,
            Cplx::real(2.0 * s),
        ];
        p.from_amplitudes(&amps).unwrap()
    }

    #[test]
    fn paper_example7_contributions() {
        // Example 7: the root has contribution 1; the right-hand q1/q0
        // nodes contribute 0.8; the left-hand q1 node 0.2 and its two
        // q0 successors 0.1 each.
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let cm = p.contributions(root);

        assert!((cm.contribution(root.node) - 1.0).abs() < 1e-12);

        let mut level1: Vec<f64> = cm.level(1).iter().map(|n| cm.contribution(*n)).collect();
        level1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(level1.len(), 2);
        assert!((level1[0] - 0.2).abs() < 1e-12, "{level1:?}");
        assert!((level1[1] - 0.8).abs() < 1e-12, "{level1:?}");

        let mut level0: Vec<f64> = cm.level(0).iter().map(|n| cm.contribution(*n)).collect();
        level0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // 0.1 + 0.1 (shared node? the two 0.1-successors are the same node
        // |0>±... let's check total instead): level sums to 1.
        let total: f64 = level0.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "{level0:?}");
    }

    #[test]
    fn level_sums_equal_one_for_unit_states() {
        let mut p = Package::new();
        let amps: Vec<Cplx> = (0..16)
            .map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum::<f64>().sqrt();
        let amps: Vec<Cplx> = amps.into_iter().map(|a| a / norm).collect();
        let root = p.from_amplitudes(&amps).unwrap();
        let cm = p.contributions(root);
        for var in 0..cm.level_count() {
            assert!(
                (cm.level_sum(var) - 1.0).abs() < 1e-10,
                "level {var}: {}",
                cm.level_sum(var)
            );
        }
    }

    #[test]
    fn basis_state_contributions_are_all_one() {
        let mut p = Package::new();
        let root = p.basis_state(5, 21);
        let cm = p.contributions(root);
        assert_eq!(cm.node_count(), 5);
        for (_, c) in cm.iter() {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sorted_ascending_is_monotone() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let cm = p.contributions(root);
        let sorted = cm.sorted_ascending();
        for w in sorted.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(sorted.len(), cm.node_count());
    }

    #[test]
    fn terminal_root_yields_empty_map() {
        let p = Package::new();
        let cm = p.contributions(VEdge::ONE);
        assert_eq!(cm.node_count(), 0);
        assert_eq!(cm.level_count(), 0);
    }
}

//! Error type for the decision-diagram engine.

use std::error::Error;
use std::fmt;

/// Errors reported by [`crate::Package`] operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DdError {
    /// A qubit index was out of range for the given register width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register width.
        n_qubits: usize,
    },
    /// The register width exceeds what the engine supports (255 qubits,
    /// or 63 for dense/basis-index operations).
    TooManyQubits {
        /// Requested width.
        n_qubits: usize,
        /// Supported maximum for the attempted operation.
        max: usize,
    },
    /// An amplitude slice had a length that is not a power of two, or was
    /// (numerically) all-zero where a quantum state was required.
    InvalidAmplitudes {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Two operands act on different register widths / levels.
    DimensionMismatch {
        /// Level of the left operand.
        left: usize,
        /// Level of the right operand.
        right: usize,
    },
    /// A dense matrix block had the wrong number of entries.
    InvalidMatrix {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A permutation table was not a bijection on its domain.
    InvalidPermutation,
    /// A gate's control and target qubits overlap.
    OverlappingQubits,
    /// An approximation parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            DdError::TooManyQubits { n_qubits, max } => {
                write!(f, "{n_qubits} qubits exceed the supported maximum of {max}")
            }
            DdError::InvalidAmplitudes { reason } => {
                write!(f, "invalid amplitude vector: {reason}")
            }
            DdError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: level {left} vs level {right}")
            }
            DdError::InvalidMatrix { reason } => write!(f, "invalid matrix block: {reason}"),
            DdError::InvalidPermutation => write!(f, "permutation table is not a bijection"),
            DdError::OverlappingQubits => write!(f, "control and target qubits overlap"),
            DdError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for DdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DdError::QubitOutOfRange {
            qubit: 7,
            n_qubits: 3,
        };
        let s = e.to_string();
        assert!(s.contains("qubit 7"));
        assert!(s.contains("3-qubit"));

        let e = DdError::TooManyQubits {
            n_qubits: 300,
            max: 255,
        };
        assert!(e.to_string().contains("300"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DdError>();
    }
}

//! Copy-on-write package snapshots: an immutable, `Arc`-shared frozen
//! prefix of a [`Package`] that many private delta packages can layer
//! over.
//!
//! # Why
//!
//! Pooled execution rebuilds every job's backend from scratch because
//! shared unique-table state is history-dependent: the first weight
//! written into a tolerance bucket becomes that bucket's canonical
//! representative, so two workers racing on one mutable package would
//! produce different (both "correct", but not *identical*) bits. A
//! snapshot sidesteps the race instead of fighting it — the expensive
//! shared state (gate DDs, their unique-table index, interned
//! canonical ratios) is built **once**, on one thread, then frozen.
//! Every job layers a private delta on top: new nodes allocate above
//! the arena watermark, lookups probe delta-then-frozen, garbage
//! collection sweeps only the delta. The frozen tier pins
//! canonicalization history, so results are byte-identical to a
//! package that built the same prefix itself and then ran the same
//! operations.
//!
//! # Lifecycle
//!
//! ```text
//!   Package::new()  ──warm gates──►  Package::freeze()  ──►  PackageSnapshot
//!                                                                │ (Arc)
//!                      ┌─────────────────────┬───────────────────┤
//!                      ▼                     ▼                   ▼
//!            Package::with_snapshot  Package::with_snapshot     ...
//!                 (worker job 1)          (worker job 2)
//!                      │                     │
//!               delta nodes ≥ watermark   delta nodes ≥ watermark
//!               private caches, GC        private caches, GC
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use approxdd_complex::{Cplx, Tolerance};

use crate::arena::{Arena, FrozenArena};
use crate::ctable::{clamp_cache_bits, ComputeCache, DEFAULT_COMPUTE_CACHE_BITS};
use crate::edge::{MEdge, VEdge};
use crate::fasthash::FxHashMap;
use crate::node::{MNode, VNode};
use crate::package::{Package, PackageStats};
use crate::unique::{FrozenUnique, UniqueTable};

/// The immutable frozen prefix of a [`Package`], shared across worker
/// packages via `Arc` (see the module docs for the lifecycle).
///
/// Holds both node arenas' frozen regions, their unique-table indexes,
/// the canonical-ratio map, and the identity-DD cache. Edges captured
/// before the freeze (gate DDs) stay valid in every package built by
/// [`Package::with_snapshot`]: frozen node ids mean the same payloads
/// everywhere.
#[derive(Debug)]
pub struct PackageSnapshot {
    pub(crate) tol: Tolerance,
    pub(crate) vnodes: Arc<FrozenArena<VNode>>,
    pub(crate) mnodes: Arc<FrozenArena<MNode>>,
    pub(crate) vunique: Arc<FrozenUnique>,
    pub(crate) munique: Arc<FrozenUnique>,
    pub(crate) ratio_canon: Arc<FxHashMap<(i64, i64), Cplx>>,
    pub(crate) ident_cache: Vec<MEdge>,
    /// Packages ever layered over this snapshot (bumped by
    /// [`Package::with_snapshot`]) — the cross-batch reuse odometer a
    /// warm serving session reads to prove one frozen tier amortized
    /// across many requests. Diagnostic only: never part of any result.
    attaches: AtomicU64,
}

impl PackageSnapshot {
    /// The numerical tolerance the snapshot was built with — every
    /// package layered over it inherits this tolerance (mixing
    /// tolerances would break canonicalization).
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tol
    }

    /// Alive vector nodes in the frozen prefix.
    #[must_use]
    pub fn frozen_vnodes(&self) -> usize {
        self.vnodes.alive_count()
    }

    /// Alive matrix nodes in the frozen prefix.
    #[must_use]
    pub fn frozen_mnodes(&self) -> usize {
        self.mnodes.alive_count()
    }

    /// Alive nodes of both kinds in the frozen prefix.
    #[must_use]
    pub fn frozen_nodes(&self) -> usize {
        self.frozen_vnodes() + self.frozen_mnodes()
    }

    /// How many packages have ever been layered over this snapshot
    /// ([`Package::with_snapshot`] calls). One per worker job in pooled
    /// execution, so a warm cross-batch session shows this climbing
    /// while the frozen tier is built exactly once.
    #[must_use]
    pub fn attaches(&self) -> u64 {
        self.attaches.load(Ordering::Relaxed)
    }
}

impl Package {
    /// Freezes this package into an immutable snapshot prefix.
    ///
    /// Everything the package built so far — nodes, unique-table
    /// entries, interned canonical ratios, the identity cache — becomes
    /// the shared frozen tier; reference counts are dropped (frozen
    /// nodes are pinned by the watermark, not by rc). Compute caches
    /// are **not** captured: they are lossy memoization whose absence
    /// only costs recomputation, never changes bits.
    ///
    /// # Panics
    ///
    /// Panics if this package already layers over a snapshot
    /// (re-freezing would need a tier merge, which is unsupported).
    #[must_use]
    pub fn freeze(self) -> PackageSnapshot {
        let _span = approxdd_telemetry::Span::enter("dd.freeze");
        assert!(
            self.ratio_frozen.is_none(),
            "cannot freeze a package layered over an existing snapshot"
        );
        PackageSnapshot {
            tol: self.tolerance(),
            vnodes: Arc::new(self.vnodes.freeze()),
            mnodes: Arc::new(self.mnodes.freeze()),
            vunique: Arc::new(self.vunique.freeze()),
            munique: Arc::new(self.munique.freeze()),
            ratio_canon: Arc::new(self.ratio_canon),
            ident_cache: self.ident_cache,
            attaches: AtomicU64::new(0),
        }
    }

    /// Creates a package layered over a frozen snapshot: lookups probe
    /// the private delta first and fall through to the frozen tier,
    /// new nodes allocate above the watermark, and garbage collection
    /// can only ever sweep the delta.
    ///
    /// `cache_bits` sizes the (private, initially empty) compute caches
    /// exactly as in [`Package::with_config`]. The tolerance is
    /// inherited from the snapshot.
    #[must_use]
    pub fn with_snapshot(snapshot: &PackageSnapshot, cache_bits: Option<u32>) -> Self {
        snapshot.attaches.fetch_add(1, Ordering::Relaxed);
        let bits = clamp_cache_bits(cache_bits.unwrap_or(DEFAULT_COMPUTE_CACHE_BITS));
        let no_key2 = (u32::MAX, u32::MAX);
        let no_key4 = (u32::MAX, u32::MAX, 0, 0);
        Self {
            tol: snapshot.tol,
            vnodes: Arena::with_frozen(Arc::clone(&snapshot.vnodes)),
            mnodes: Arena::with_frozen(Arc::clone(&snapshot.mnodes)),
            vunique: UniqueTable::with_frozen(Arc::clone(&snapshot.vunique)),
            munique: UniqueTable::with_frozen(Arc::clone(&snapshot.munique)),
            ratio_canon: FxHashMap::default(),
            ratio_frozen: Some(Arc::clone(&snapshot.ratio_canon)),
            ct_add: ComputeCache::new(bits, no_key4, VEdge::ZERO),
            ct_mul_mv: ComputeCache::new(bits, no_key2, VEdge::ZERO),
            ct_mul_mm: ComputeCache::new(bits, no_key2, MEdge::ZERO),
            ct_inner: ComputeCache::new(bits, no_key2, Cplx::ZERO),
            ident_cache: snapshot.ident_cache.clone(),
            stats: PackageStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    /// Freezing a package that built a gate and reusing it through a
    /// layered package must give bit-identical amplitudes to a fresh
    /// package doing everything itself.
    #[test]
    fn layered_package_reproduces_base_package_bits() {
        let n = 3;
        // Reference: one package does everything.
        let mut reference = Package::new();
        let gate_h = reference.single_gate(n, 0, GateKind::H.matrix()).unwrap();
        let gate_t = reference.single_gate(n, 1, GateKind::T.matrix()).unwrap();
        let mut state = reference.zero_state(n);
        state = reference.apply(gate_h, state);
        state = reference.apply(gate_t, state);
        let want = reference.to_amplitudes(state, n).unwrap();

        // Snapshot path: gates built in a base package, then frozen.
        let mut base = Package::new();
        let g_h = base.single_gate(n, 0, GateKind::H.matrix()).unwrap();
        let g_t = base.single_gate(n, 1, GateKind::T.matrix()).unwrap();
        let snapshot = base.freeze();
        assert!(snapshot.frozen_mnodes() > 0);
        assert_eq!(snapshot.frozen_vnodes(), 0, "gate warming builds no vnodes");

        for _ in 0..2 {
            let mut p = Package::with_snapshot(&snapshot, None);
            let mut s = p.zero_state(n);
            s = p.apply(g_h, s);
            s = p.apply(g_t, s);
            let got = p.to_amplitudes(s, n).unwrap();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(g.re.to_bits() == w.re.to_bits() && g.im.to_bits() == w.im.to_bits());
            }
            let stats = p.stats();
            assert_eq!(stats.frozen_mnodes, snapshot.frozen_mnodes());

            // Rebuilding a warmed gate resolves every node in the
            // frozen unique tier: no new mnodes, snapshot hits counted.
            let mnodes_before = p.stats().mnodes_alive;
            let rebuilt = p.single_gate(n, 0, GateKind::H.matrix()).unwrap();
            assert_eq!(rebuilt, g_h, "frozen gate DD is canonical across tiers");
            assert_eq!(p.stats().mnodes_alive, mnodes_before);
            assert!(
                p.stats().snapshot_hits > 0,
                "rebuilding a frozen gate must hit the frozen unique tier"
            );
        }
    }

    /// Delta-layer GC must never free a frozen node: after collecting
    /// an unrooted delta state, the frozen gate still applies and the
    /// frozen counts are untouched.
    #[test]
    fn delta_gc_respects_the_watermark() {
        let n = 4;
        let mut base = Package::new();
        let gate = base.single_gate(n, 2, GateKind::H.matrix()).unwrap();
        let snapshot = base.freeze();
        let frozen_m = snapshot.frozen_mnodes();

        let mut p = Package::with_snapshot(&snapshot, None);
        let mut s = p.zero_state(n);
        s = p.apply(gate, s);
        // Nothing rooted: a full GC pass frees the whole delta.
        let gc = p.collect_garbage();
        assert!(gc.vnodes_freed > 0);
        assert_eq!(gc.mnodes_freed, 0, "no delta mnodes were built");
        let stats = p.stats();
        assert_eq!(stats.frozen_mnodes, frozen_m);
        assert_eq!(stats.mnodes_alive, frozen_m, "frozen mnodes survive GC");

        // The frozen gate is still fully usable after the sweep.
        let mut s2 = p.zero_state(n);
        s2 = p.apply(gate, s2);
        let amps = p.to_amplitudes(s2, n).unwrap();
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((amps[0].re - inv_sqrt2).abs() < 1e-12);
        assert!((amps[1 << 2].re - inv_sqrt2).abs() < 1e-12);
        let _ = s;
    }
}

//! The [`Package`]: owner of all nodes, tables and caches.

use std::hash::Hasher;

use approxdd_complex::{Cplx, Tolerance};

use crate::arena::Arena;
use crate::ctable::{clamp_cache_bits, ComputeCache, CtStats, DEFAULT_COMPUTE_CACHE_BITS};
use crate::edge::{MEdge, NodeId, VEdge};
use crate::error::DdError;
use crate::fasthash::FxHasher;
use crate::node::{MNode, VNode};
use crate::unique::UniqueTable;
use crate::Result;

/// Maximum number of qubits the node representation supports.
pub(crate) const MAX_QUBITS: usize = 255;
/// Maximum register width for operations that enumerate `2^n` basis
/// indices (dense conversion).
pub(crate) const MAX_DENSE_QUBITS: usize = 26;

/// Hash of a vector node's unique-table key (child ids plus
/// tolerance-quantized child weights; the level is implicit in the
/// per-level table).
#[inline]
fn vkey_hash(nodes: [u32; 2], weights: [(i64, i64); 2]) -> u64 {
    let mut h = FxHasher::default();
    for n in nodes {
        h.write_u32(n);
    }
    for (re, im) in weights {
        h.write_i64(re);
        h.write_i64(im);
    }
    h.finish()
}

/// Hash of a matrix node's unique-table key.
#[inline]
fn mkey_hash(nodes: [u32; 4], weights: [(i64, i64); 4]) -> u64 {
    let mut h = FxHasher::default();
    for n in nodes {
        h.write_u32(n);
    }
    for (re, im) in weights {
        h.write_i64(re);
        h.write_i64(im);
    }
    h.finish()
}

/// Operational statistics of a [`Package`], for benchmarking and the
/// memory-driven approximation strategy.
///
/// # Compute-table accounting semantics
///
/// Hit/miss counters are incremented **inside the cache lookup**: every
/// lookup a DD operation performs counts as exactly one hit (a memoized
/// result was returned) or one miss (the operation recomputed and
/// re-inserted). Operand-order canonicalization and trivial cases that
/// never consult a cache (zero edges, terminal×terminal, same-node
/// shortcuts) count as neither. The counters are *lifetime* totals of
/// the package — clearing a cache (an O(1) generation bump, performed
/// by garbage collection) resets its occupancy but **not** its hit/miss
/// counters, so hit rates are comparable across runs regardless of how
/// often the caches were invalidated. Earlier revisions cleared the
/// growable tables wholesale past an entry cap, which made hit-rate
/// numbers depend on where the cap happened to fall; the fixed-capacity
/// lossy caches have no such cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Vector nodes currently alive.
    pub vnodes_alive: usize,
    /// Peak simultaneously-alive vector nodes.
    pub vnodes_peak: usize,
    /// Matrix nodes currently alive.
    pub mnodes_alive: usize,
    /// Peak simultaneously-alive matrix nodes.
    pub mnodes_peak: usize,
    /// Unique-table lookups that found an existing node.
    pub unique_hits: u64,
    /// Unique-table lookups that created a new node.
    pub unique_misses: u64,
    /// Live unique-table entries across both node kinds and all levels.
    pub unique_len: usize,
    /// Unique-table buckets across both node kinds and all levels.
    pub unique_capacity: usize,
    /// Compute-table hits (all operation caches combined).
    pub ct_hits: u64,
    /// Compute-table misses.
    pub ct_misses: u64,
    /// Addition cache (`add`).
    pub ct_add: CtStats,
    /// Matrix–vector multiplication cache (`mul_mv` / `apply`).
    pub ct_mul_mv: CtStats,
    /// Matrix–matrix multiplication cache (`mul_mm`).
    pub ct_mul_mm: CtStats,
    /// Inner-product cache (`inner_product` / `fidelity`).
    pub ct_inner: CtStats,
    /// Garbage-collection runs performed.
    pub gc_runs: u64,
    /// Total nodes reclaimed by garbage collection.
    pub gc_freed: u64,
    /// Alive vector nodes in the frozen snapshot prefix (0 without a
    /// snapshot).
    pub frozen_vnodes: usize,
    /// Alive matrix nodes in the frozen snapshot prefix.
    pub frozen_mnodes: usize,
    /// Unique-table hits that resolved to a frozen snapshot node
    /// (a subset of `unique_hits`; 0 without a snapshot).
    pub snapshot_hits: u64,
}

impl PackageStats {
    /// Aggregate compute-cache hit rate over the package's lifetime
    /// (0 when no lookups happened).
    #[must_use]
    pub fn ct_hit_rate(&self) -> f64 {
        let total = self.ct_hits + self.ct_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.ct_hits as f64 / total as f64
            }
        }
    }

    /// Fraction of unique-table buckets holding a live entry.
    #[must_use]
    pub fn unique_occupancy(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.unique_len as f64 / self.unique_capacity as f64
            }
        }
    }

    /// Peak simultaneously-alive nodes of both kinds combined.
    #[must_use]
    pub fn peak_nodes(&self) -> usize {
        self.vnodes_peak + self.mnodes_peak
    }

    /// Alive nodes of both kinds in the frozen snapshot prefix.
    #[must_use]
    pub fn frozen_nodes(&self) -> usize {
        self.frozen_vnodes + self.frozen_mnodes
    }

    /// Alive nodes of both kinds in the private delta layer (everything
    /// alive when no snapshot is attached).
    #[must_use]
    pub fn delta_nodes(&self) -> usize {
        (self.vnodes_alive + self.mnodes_alive).saturating_sub(self.frozen_nodes())
    }

    /// Fraction of unique-table lookups that resolved to a frozen
    /// snapshot node (0 when no lookups happened or no snapshot is
    /// attached).
    #[must_use]
    pub fn snapshot_hit_rate(&self) -> f64 {
        let total = self.unique_hits + self.unique_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.snapshot_hits as f64 / total as f64
            }
        }
    }
}

/// The decision-diagram package: arena storage, unique tables for
/// canonicity, compute tables for memoization, and the numerical
/// tolerance that defines weight equality.
///
/// All DD operations are methods on this type; edges returned by one
/// package must not be used with another.
///
/// # Examples
///
/// ```
/// use approxdd_dd::Package;
///
/// let mut p = Package::new();
/// let ghz_like = p.basis_state(3, 0b101);
/// assert_eq!(p.vsize(ghz_like), 3); // one node per qubit
/// ```
#[derive(Debug)]
pub struct Package {
    pub(crate) tol: Tolerance,
    pub(crate) vnodes: Arena<VNode>,
    pub(crate) mnodes: Arena<MNode>,
    pub(crate) vunique: UniqueTable,
    pub(crate) munique: UniqueTable,
    /// Canonicalization map for `add` weight ratios: tolerance bucket →
    /// the first exact ratio seen in that bucket. Near-equal ratios
    /// (the overwhelmingly common case — low-order float noise from
    /// different computation paths) collapse onto one canonical value,
    /// which is what lets the lossy `ct_add` hit on them while staying
    /// sound: the canonical ratio is a *stable* pure function of the
    /// operation sequence, independent of compute-cache size, so
    /// hit ≡ recompute bit-for-bit. The same idea as the QMDD "complex
    /// table" (DDSIM interns all weights); applied here only where the
    /// repo needs it, at the single cache whose key involves computed
    /// weights. See `Package::add`.
    pub(crate) ratio_canon: crate::fasthash::FxHashMap<(i64, i64), Cplx>,
    /// Immutable canonical-ratio tier of an attached snapshot, probed
    /// before `ratio_canon` so frozen buckets keep their pinned
    /// representatives (first-write-wins across the snapshot boundary).
    pub(crate) ratio_frozen: Option<std::sync::Arc<crate::fasthash::FxHashMap<(i64, i64), Cplx>>>,
    pub(crate) ct_add: ComputeCache<(u32, u32, u64, u64), VEdge>,
    pub(crate) ct_mul_mv: ComputeCache<(u32, u32), VEdge>,
    pub(crate) ct_mul_mm: ComputeCache<(u32, u32), MEdge>,
    pub(crate) ct_inner: ComputeCache<(u32, u32), Cplx>,
    /// `ident_cache[k]` is the identity matrix DD over levels `0..k`
    /// (height `k`); entry 0 is the terminal edge.
    pub(crate) ident_cache: Vec<MEdge>,
    pub(crate) stats: PackageStats,
}

impl Package {
    /// Creates a package with the default tolerance
    /// ([`approxdd_complex::DEFAULT_TOLERANCE`]) and default compute
    /// cache size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(Tolerance::default(), None)
    }

    /// Creates a package with an explicit tolerance. Looser tolerances
    /// merge more near-equal weights (smaller DDs, more rounding); tighter
    /// tolerances are more faithful but may duplicate nodes.
    #[must_use]
    pub fn with_tolerance(tol: Tolerance) -> Self {
        Self::with_config(tol, None)
    }

    /// Creates a package with `2^bits` slots in each lossy compute
    /// cache (see [`Package::with_config`]).
    #[must_use]
    pub fn with_cache_bits(bits: u32) -> Self {
        Self::with_config(Tolerance::default(), Some(bits))
    }

    /// Creates a package with an explicit tolerance and compute-cache
    /// size. `cache_bits` is the `log2` slot count of each of the four
    /// lossy compute caches (`None` → the engine default of
    /// 2^16 slots per table), clamped to the supported `[2, 26]` range.
    ///
    /// Cache size is a pure time/memory trade: the caches are lossy and
    /// results are **bit-identical for every size** — an undersized
    /// cache only recomputes more (see the crate-level docs on the
    /// lossy cache design).
    #[must_use]
    pub fn with_config(tol: Tolerance, cache_bits: Option<u32>) -> Self {
        let bits = clamp_cache_bits(cache_bits.unwrap_or(DEFAULT_COMPUTE_CACHE_BITS));
        // Filler entries are dead (generation-stamp 0) and never
        // observable; any value works.
        let no_key2 = (u32::MAX, u32::MAX);
        let no_key4 = (u32::MAX, u32::MAX, 0, 0);
        Self {
            tol,
            vnodes: Arena::new(),
            mnodes: Arena::new(),
            vunique: UniqueTable::new(),
            munique: UniqueTable::new(),
            ratio_canon: crate::fasthash::FxHashMap::default(),
            ratio_frozen: None,
            ct_add: ComputeCache::new(bits, no_key4, VEdge::ZERO),
            ct_mul_mv: ComputeCache::new(bits, no_key2, VEdge::ZERO),
            ct_mul_mm: ComputeCache::new(bits, no_key2, MEdge::ZERO),
            ct_inner: ComputeCache::new(bits, no_key2, Cplx::ZERO),
            ident_cache: vec![MEdge::ONE],
            stats: PackageStats::default(),
        }
    }

    /// The numerical tolerance of this package.
    #[must_use]
    pub fn tolerance(&self) -> Tolerance {
        self.tol
    }

    /// Current operational statistics.
    #[must_use]
    pub fn stats(&self) -> PackageStats {
        let mut s = self.stats;
        s.vnodes_alive = self.vnodes.alive_count();
        s.vnodes_peak = self.vnodes.peak_count();
        s.mnodes_alive = self.mnodes.alive_count();
        s.mnodes_peak = self.mnodes.peak_count();
        s.unique_len = self.vunique.len() + self.munique.len();
        s.unique_capacity = self.vunique.capacity() + self.munique.capacity();
        s.ct_add = self.ct_add.stats();
        s.ct_mul_mv = self.ct_mul_mv.stats();
        s.ct_mul_mm = self.ct_mul_mm.stats();
        s.ct_inner = self.ct_inner.stats();
        s.ct_hits = s.ct_add.hits + s.ct_mul_mv.hits + s.ct_mul_mm.hits + s.ct_inner.hits;
        s.ct_misses = s.ct_add.misses + s.ct_mul_mv.misses + s.ct_mul_mm.misses + s.ct_inner.misses;
        s.frozen_vnodes = self.vnodes.frozen_count();
        s.frozen_mnodes = self.mnodes.frozen_count();
        s
    }

    // ------------------------------------------------------------------
    // node construction & normalization
    // ------------------------------------------------------------------

    pub(crate) fn vnode(&self, id: NodeId) -> &VNode {
        self.vnodes.get(id.0)
    }

    pub(crate) fn mnode(&self, id: NodeId) -> &MNode {
        self.mnodes.get(id.0)
    }

    /// Level (number of qubits) represented by a vector edge: the var of
    /// its node plus one, or 0 for terminal edges.
    #[must_use]
    pub fn vlevel(&self, e: VEdge) -> usize {
        if e.node.is_terminal() {
            0
        } else {
            usize::from(self.vnode(e.node).var) + 1
        }
    }

    /// Level represented by a matrix edge (0 for terminal edges).
    #[must_use]
    pub fn mlevel(&self, e: MEdge) -> usize {
        if e.node.is_terminal() {
            0
        } else {
            usize::from(self.mnode(e.node).var) + 1
        }
    }

    /// Creates (or reuses) the canonical vector node `var -> (e0, e1)`
    /// and returns the normalized edge pointing to it.
    ///
    /// Normalization: the weight pair is scaled to unit ℓ2 norm and the
    /// first non-zero weight is made real positive; the inverse scale
    /// factor is returned on the edge. Near-zero child weights are
    /// snapped to the canonical zero stub.
    pub(crate) fn make_vnode(&mut self, var: u8, mut e0: VEdge, mut e1: VEdge) -> VEdge {
        if self.tol.is_zero(e0.w) {
            e0 = VEdge::ZERO;
        }
        if self.tol.is_zero(e1.w) {
            e1 = VEdge::ZERO;
        }
        debug_assert!(self.child_level_ok(var, e0) && self.child_level_ok(var, e1));

        let m0 = e0.w.mag2();
        let m1 = e1.w.mag2();
        if m0 == 0.0 && m1 == 0.0 {
            return VEdge::ZERO;
        }
        let norm = (m0 + m1).sqrt();
        // Canonical pivot: the first structurally non-zero child.
        let pivot_w = if m0 > 0.0 { e0.w } else { e1.w };
        let phase = pivot_w.phase();
        let factor = phase * norm;
        let inv = factor.recip();
        // Kill numerical noise: the pivot becomes exactly real positive.
        let (n0, n1) = if m0 > 0.0 {
            (Cplx::real(m0.sqrt() / norm), e1.w * inv)
        } else {
            (Cplx::ZERO, Cplx::real(m1.sqrt() / norm))
        };
        let e0 = VEdge {
            w: n0,
            node: e0.node,
        };
        let e1 = VEdge {
            w: n1,
            node: e1.node,
        };

        let weights = [self.tol.key(e0.w), self.tol.key(e1.w)];
        let hash = vkey_hash([e0.node.0, e1.node.0], weights);
        let tol = self.tol;
        let arena = &self.vnodes;
        let found = self.vunique.lookup(var, hash, |id| {
            let n = arena.get(id);
            n.edges[0].node == e0.node
                && n.edges[1].node == e1.node
                && tol.key(n.edges[0].w) == weights[0]
                && tol.key(n.edges[1].w) == weights[1]
        });
        let id = match found {
            Some(id) => {
                self.stats.unique_hits += 1;
                if id < self.vnodes.watermark() {
                    self.stats.snapshot_hits += 1;
                }
                id
            }
            None => {
                self.stats.unique_misses += 1;
                let id = self.vnodes.alloc(VNode {
                    var,
                    edges: [e0, e1],
                });
                self.vunique.insert(var, hash, id);
                id
            }
        };
        VEdge {
            w: factor,
            node: NodeId(id),
        }
    }

    fn child_level_ok(&self, var: u8, e: VEdge) -> bool {
        if e.node.is_terminal() {
            // Zero stubs are allowed anywhere; non-zero terminal children
            // only directly above the terminal (var == 0).
            self.tol.is_zero(e.w) || var == 0
        } else {
            self.vnode(e.node).var + 1 == var
        }
    }

    /// Creates (or reuses) the canonical matrix node and returns the
    /// normalized edge. Matrix nodes are normalized by the
    /// largest-magnitude quadrant weight (ties: first in row-major
    /// order), keeping all stored weights at magnitude ≤ 1.
    pub(crate) fn make_mnode(&mut self, var: u8, mut edges: [MEdge; 4]) -> MEdge {
        for e in &mut edges {
            if self.tol.is_zero(e.w) {
                *e = MEdge::ZERO;
            }
        }
        let mags = edges.map(|e| e.w.mag2());
        let mut pivot = 0;
        for (i, m) in mags.iter().enumerate() {
            if *m > mags[pivot] {
                pivot = i;
            }
        }
        if mags[pivot] == 0.0 {
            return MEdge::ZERO;
        }
        let factor = edges[pivot].w;
        let inv = factor.recip();
        for (i, e) in edges.iter_mut().enumerate() {
            if i == pivot {
                e.w = Cplx::ONE;
            } else {
                e.w *= inv;
                if self.tol.is_zero(e.w) {
                    *e = MEdge::ZERO;
                }
            }
        }

        let weights = edges.map(|e| self.tol.key(e.w));
        let hash = mkey_hash(edges.map(|e| e.node.0), weights);
        let tol = self.tol;
        let arena = &self.mnodes;
        let found = self.munique.lookup(var, hash, |id| {
            let n = arena.get(id);
            (0..4).all(|i| n.edges[i].node == edges[i].node && tol.key(n.edges[i].w) == weights[i])
        });
        let id = match found {
            Some(id) => {
                self.stats.unique_hits += 1;
                if id < self.mnodes.watermark() {
                    self.stats.snapshot_hits += 1;
                }
                id
            }
            None => {
                self.stats.unique_misses += 1;
                let id = self.mnodes.alloc(MNode { var, edges });
                self.munique.insert(var, hash, id);
                id
            }
        };
        MEdge {
            w: factor,
            node: NodeId(id),
        }
    }

    // ------------------------------------------------------------------
    // external roots
    // ------------------------------------------------------------------

    /// Registers a vector edge as an external GC root.
    pub fn inc_ref(&mut self, e: VEdge) {
        if !e.node.is_terminal() {
            self.vnodes.inc_rc(e.node.0);
        }
    }

    /// Releases an external vector-edge root.
    ///
    /// # Panics
    ///
    /// Debug builds panic on reference-count underflow.
    pub fn dec_ref(&mut self, e: VEdge) {
        if !e.node.is_terminal() {
            self.vnodes.dec_rc(e.node.0);
        }
    }

    /// Registers a matrix edge as an external GC root.
    pub fn inc_ref_m(&mut self, e: MEdge) {
        if !e.node.is_terminal() {
            self.mnodes.inc_rc(e.node.0);
        }
    }

    /// Releases an external matrix-edge root.
    pub fn dec_ref_m(&mut self, e: MEdge) {
        if !e.node.is_terminal() {
            self.mnodes.dec_rc(e.node.0);
        }
    }

    // ------------------------------------------------------------------
    // state construction / inspection
    // ------------------------------------------------------------------

    /// Builds the computational basis state `|idx⟩` on `n_qubits` qubits.
    /// Bit `v` of `idx` is the value of qubit `v`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 63` (use at most 63 so `idx` fits in `u64`)
    /// or if `idx >= 2^n_qubits`.
    #[must_use]
    pub fn basis_state(&mut self, n_qubits: usize, idx: u64) -> VEdge {
        assert!(n_qubits <= 63, "basis_state supports at most 63 qubits");
        assert!(
            n_qubits == 64 || idx < (1u64 << n_qubits),
            "basis index {idx} out of range for {n_qubits} qubits"
        );
        let mut e = VEdge::ONE;
        for v in 0..n_qubits {
            let bit = (idx >> v) & 1;
            e = if bit == 0 {
                self.make_vnode(v as u8, e, VEdge::ZERO)
            } else {
                self.make_vnode(v as u8, VEdge::ZERO, e)
            };
        }
        e
    }

    /// Builds the all-zeros state `|0…0⟩`.
    #[must_use]
    pub fn zero_state(&mut self, n_qubits: usize) -> VEdge {
        self.basis_state(n_qubits, 0)
    }

    /// Builds a vector DD from a dense amplitude slice of length `2^n`.
    /// The vector need not be normalized; the edge then carries the norm.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidAmplitudes`] if the length is not a power of two
    /// or zero; [`DdError::TooManyQubits`] beyond 26 qubits.
    pub fn from_amplitudes(&mut self, amps: &[Cplx]) -> Result<VEdge> {
        if amps.is_empty() || !amps.len().is_power_of_two() {
            return Err(DdError::InvalidAmplitudes {
                reason: "length must be a non-zero power of two",
            });
        }
        let n = amps.len().trailing_zeros() as usize;
        if n > MAX_DENSE_QUBITS {
            return Err(DdError::TooManyQubits {
                n_qubits: n,
                max: MAX_DENSE_QUBITS,
            });
        }
        Ok(self.build_dd_from_amps(amps, n))
    }

    fn build_dd_from_amps(&mut self, amps: &[Cplx], n: usize) -> VEdge {
        if n == 0 {
            let w = amps[0];
            return if self.tol.is_zero(w) {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        let half = amps.len() / 2;
        let e0 = self.build_dd_from_amps(&amps[..half], n - 1);
        let e1 = self.build_dd_from_amps(&amps[half..], n - 1);
        self.make_vnode((n - 1) as u8, e0, e1)
    }

    /// Expands a vector DD into a dense amplitude vector of length
    /// `2^n_qubits`.
    ///
    /// # Errors
    ///
    /// [`DdError::TooManyQubits`] beyond 26 qubits;
    /// [`DdError::DimensionMismatch`] if the edge's level exceeds
    /// `n_qubits`.
    pub fn to_amplitudes(&self, e: VEdge, n_qubits: usize) -> Result<Vec<Cplx>> {
        if n_qubits > MAX_DENSE_QUBITS {
            return Err(DdError::TooManyQubits {
                n_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let level = self.vlevel(e);
        if level > n_qubits {
            return Err(DdError::DimensionMismatch {
                left: level,
                right: n_qubits,
            });
        }
        let mut out = vec![Cplx::ZERO; 1 << n_qubits];
        self.to_amps_rec(e, Cplx::ONE, 0, &mut out);
        Ok(out)
    }

    fn to_amps_rec(&self, e: VEdge, acc: Cplx, offset: usize, out: &mut [Cplx]) {
        if self.tol.is_zero(e.w) {
            return;
        }
        let acc = acc * e.w;
        if e.node.is_terminal() {
            out[offset] = acc;
            return;
        }
        let node = *self.vnode(e.node);
        let stride = 1usize << node.var;
        self.to_amps_rec(node.edges[0], acc, offset, out);
        self.to_amps_rec(node.edges[1], acc, offset + stride, out);
    }

    /// The amplitude of basis state `idx` in the state rooted at `e`
    /// (an `n_qubits`-level DD).
    #[must_use]
    pub fn amplitude(&self, e: VEdge, idx: u64) -> Cplx {
        let mut acc = e.w;
        let mut node = e.node;
        loop {
            if acc == Cplx::ZERO {
                return Cplx::ZERO;
            }
            if node.is_terminal() {
                return acc;
            }
            let n = self.vnode(node);
            let bit = ((idx >> n.var) & 1) as usize;
            let child = n.edges[bit];
            acc *= child.w;
            node = child.node;
        }
    }

    /// Number of non-terminal nodes reachable from a vector edge — the
    /// "DD size" that the memory-driven strategy thresholds on.
    #[must_use]
    pub fn vsize(&self, e: VEdge) -> usize {
        let mut seen =
            std::collections::HashSet::with_hasher(crate::fasthash::FxBuildHasher::default());
        let mut stack = vec![e.node];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let node = self.vnode(id);
            stack.push(node.edges[0].node);
            stack.push(node.edges[1].node);
        }
        count
    }

    /// Number of non-terminal nodes reachable from a matrix edge.
    #[must_use]
    pub fn msize(&self, e: MEdge) -> usize {
        let mut seen =
            std::collections::HashSet::with_hasher(crate::fasthash::FxBuildHasher::default());
        let mut stack = vec![e.node];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            count += 1;
            let node = self.mnode(id);
            for c in node.edges {
                stack.push(c.node);
            }
        }
        count
    }

    /// ℓ2 norm of the represented vector. With this crate's normalization
    /// the norm equals `|e.w|` exactly, but this method computes it from
    /// first principles (useful as a consistency check).
    #[must_use]
    pub fn norm(&mut self, e: VEdge) -> f64 {
        self.inner_product(e, e).re.max(0.0).sqrt()
    }

    // ------------------------------------------------------------------
    // compute-table plumbing
    // ------------------------------------------------------------------

    /// Canonicalizes an `add` weight ratio: returns its tolerance
    /// bucket plus the bucket's canonical representative (the first
    /// exact ratio seen in it). The map's evolution is a pure function
    /// of the operation sequence — compute caches never influence it —
    /// which is what keeps `ct_add` hits bit-identical to
    /// recomputation. Past the entry cap the map resets along with
    /// **every** compute cache — not just `ct_add`: `mul_mv`/`mul_mm`/
    /// `inner` results embed add results and therefore canonical-ratio
    /// bits, so any surviving entry could disagree with a post-reset
    /// recomputation. The reset timing is equally
    /// cache-size-independent.
    pub(crate) fn canonical_ratio(&mut self, ratio: Cplx) -> ((i64, i64), Cplx) {
        /// Entry cap of the ratio-canonicalization map (~8 MiB).
        const RATIO_CANON_CAP: usize = 1 << 18;
        if self.ratio_canon.len() >= RATIO_CANON_CAP {
            // Only the private delta map resets: the frozen tier is a
            // snapshot invariant shared with every sibling package.
            self.ratio_canon.clear();
            self.clear_compute_tables();
        }
        let rk = self.tol.key(ratio);
        // Frozen buckets keep their pinned representatives so every
        // package sharing the snapshot canonicalizes identically.
        if let Some(frozen) = &self.ratio_frozen {
            if let Some(&canonical) = frozen.get(&rk) {
                return (rk, canonical);
            }
        }
        let canonical = *self.ratio_canon.entry(rk).or_insert(ratio);
        (rk, canonical)
    }

    /// Drops all memoized operation results (mandatory after GC). An
    /// O(1) generation bump per cache — nothing is freed or rehashed.
    pub(crate) fn clear_compute_tables(&mut self) {
        self.ct_add.clear();
        self.ct_mul_mv.clear();
        self.ct_mul_mm.clear();
        self.ct_inner.clear();
    }

    pub(crate) fn remove_vnode_from_unique(&mut self, id: u32, node: &VNode) {
        // The stored node's weights are exactly the bits the key was
        // quantized from at insert time, so the recomputed hash matches.
        let weights = [self.tol.key(node.edges[0].w), self.tol.key(node.edges[1].w)];
        let hash = vkey_hash([node.edges[0].node.0, node.edges[1].node.0], weights);
        let removed = self.vunique.remove(node.var, hash, id);
        debug_assert!(removed, "swept vnode {id} missing from unique table");
    }

    pub(crate) fn remove_mnode_from_unique(&mut self, id: u32, node: &MNode) {
        let weights = node.edges.map(|e| self.tol.key(e.w));
        let hash = mkey_hash(node.edges.map(|e| e.node.0), weights);
        let removed = self.munique.remove(node.var, hash, id);
        debug_assert!(removed, "swept mnode {id} missing from unique table");
    }
}

impl Default for Package {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_state_has_one_node_per_qubit() {
        let mut p = Package::new();
        for idx in 0..8u64 {
            let e = p.basis_state(3, idx);
            assert_eq!(p.vsize(e), 3);
            let amps = p.to_amplitudes(e, 3).unwrap();
            for (i, a) in amps.iter().enumerate() {
                if i as u64 == idx {
                    assert!((a.mag2() - 1.0).abs() < 1e-12);
                } else {
                    assert!(a.mag2() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn basis_states_are_shared() {
        let mut p = Package::new();
        let a = p.basis_state(4, 5);
        let b = p.basis_state(4, 5);
        assert_eq!(a.node, b.node, "identical states must share the root node");
    }

    #[test]
    fn from_to_amplitudes_roundtrip() {
        let mut p = Package::new();
        let amps: Vec<Cplx> = vec![
            Cplx::new(0.5, 0.0),
            Cplx::new(0.0, 0.5),
            Cplx::new(-0.5, 0.0),
            Cplx::new(0.0, -0.5),
        ];
        let e = p.from_amplitudes(&amps).unwrap();
        let back = p.to_amplitudes(e, 2).unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert!((*a - *b).mag() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn from_amplitudes_rejects_bad_lengths() {
        let mut p = Package::new();
        assert!(matches!(
            p.from_amplitudes(&[]),
            Err(DdError::InvalidAmplitudes { .. })
        ));
        assert!(matches!(
            p.from_amplitudes(&[Cplx::ONE; 3]),
            Err(DdError::InvalidAmplitudes { .. })
        ));
    }

    #[test]
    fn uniform_superposition_is_maximally_compact() {
        let mut p = Package::new();
        let n = 6;
        let dim = 1usize << n;
        let amp = Cplx::real(1.0 / (dim as f64).sqrt());
        let amps = vec![amp; dim];
        let e = p.from_amplitudes(&amps).unwrap();
        // A uniform state has exactly one node per level.
        assert_eq!(p.vsize(e), n);
        assert!((e.w.mag() - 1.0).abs() < 1e-12, "unit norm on the root");
    }

    #[test]
    fn amplitude_walk_matches_dense() {
        let mut p = Package::new();
        let amps: Vec<Cplx> = (0..16)
            .map(|i| Cplx::new(((i * 7) % 5) as f64 * 0.1, ((i * 3) % 4) as f64 * -0.05))
            .collect();
        let e = p.from_amplitudes(&amps).unwrap();
        for (i, want) in amps.iter().enumerate() {
            let got = p.amplitude(e, i as u64);
            assert!((got - *want).mag() < 1e-12);
        }
    }

    #[test]
    fn normalization_gives_unit_subtree_norm() {
        let mut p = Package::new();
        let amps = [
            Cplx::new(0.1, 0.2),
            Cplx::new(-0.3, 0.0),
            Cplx::new(0.0, 0.7),
            Cplx::new(0.5, -0.1),
        ];
        let e = p.from_amplitudes(&amps).unwrap();
        let total: f64 = amps.iter().map(|a| a.mag2()).sum();
        assert!(
            (e.w.mag2() - total).abs() < 1e-12,
            "root weight carries the norm"
        );
        // Every node weight pair has unit l2 norm.
        let root = p.vnode(e.node);
        let s = root.edges[0].w.mag2() + root.edges[1].w.mag2();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_collapses_to_zero_edge() {
        let mut p = Package::new();
        let e = p.from_amplitudes(&[Cplx::ZERO; 8]).unwrap();
        assert_eq!(e, VEdge::ZERO);
        assert_eq!(p.vsize(e), 0);
    }

    #[test]
    fn canonical_phase_pivot_is_real_positive() {
        let mut p = Package::new();
        // Same state up to a global phase must share the node.
        let amps1 = [Cplx::new(0.6, 0.0), Cplx::new(0.8, 0.0)];
        let phase = Cplx::from_polar(1.0, 1.234);
        let amps2 = [amps1[0] * phase, amps1[1] * phase];
        let e1 = p.from_amplitudes(&amps1).unwrap();
        let e2 = p.from_amplitudes(&amps2).unwrap();
        assert_eq!(
            e1.node, e2.node,
            "global phase must land on the edge weight"
        );
    }

    #[test]
    fn ratio_canon_cap_reset_clears_every_compute_cache() {
        // When the canonicalization map resets, *all* compute caches
        // must drop: mul_mv/mul_mm/inner results embed add results and
        // therefore canonical-ratio bits, so a surviving entry could
        // disagree with a post-reset recomputation.
        let mut p = Package::new();
        p.ct_mul_mv.insert((1, 2), VEdge::ONE);
        p.ct_inner.insert((3, 4), Cplx::I);
        for i in 0..(1 << 18) {
            p.ratio_canon.insert((i, 0), Cplx::ONE);
        }
        let (_, canonical) = p.canonical_ratio(Cplx::new(0.5, 0.0));
        assert_eq!(canonical, Cplx::new(0.5, 0.0), "map was reset");
        assert!(p.ratio_canon.len() <= 1);
        assert_eq!(p.ct_mul_mv.lookup(&(1, 2)), None, "mul_mv must clear");
        assert_eq!(p.ct_inner.lookup(&(3, 4)), None, "inner must clear");
    }

    #[test]
    fn stats_report_alive_nodes() {
        let mut p = Package::new();
        let _ = p.basis_state(5, 17);
        let s = p.stats();
        assert_eq!(s.vnodes_alive, 5);
        assert!(s.unique_misses >= 5);
    }
}

//! Construction of operation (matrix) DDs: standard gates, controlled
//! gates with arbitrary control polarity and position, and multi-qubit
//! blocks given densely or as basis-state permutations (the building
//! block for Shor's modular-multiplication gates).
//!
//! # Construction scheme
//!
//! A gate is described by a contiguous *block* of `k` target qubits
//! `[lo, lo + k)` carrying a `2^k × 2^k` body, plus any number of
//! single-qubit controls outside the block. The full-width DD is built
//! in three zones:
//!
//! * **above the block** — a top-down scan: control levels branch into
//!   an "active" diagonal quadrant and an identity fallback, other
//!   levels are plain diagonal pass-through;
//! * **the block** — quadrant recursion over the body (dense lookup or
//!   permutation with zero-block short-circuit);
//! * **below the block** — each body entry `(r, c)` continues into a
//!   chain that enforces the remaining controls: satisfied paths carry
//!   the entry value, failing control paths fall back to identity if
//!   `r == c` (and to zero otherwise).
//!
//! This yields the exact operator `U ⊗ P_sat + I ⊗ (I − P_sat)` for any
//! placement of controls relative to the block.

use approxdd_complex::Cplx;

use crate::edge::MEdge;
use crate::error::DdError;
use crate::fasthash::FxHashMap;
use crate::package::{Package, MAX_QUBITS};
use crate::Result;

/// Standard single-qubit gate matrices.
///
/// The variants cover the gate alphabet used by the paper's benchmark
/// circuits: Clifford+T, square roots of X/Y (quantum-supremacy
/// circuits), and parameterized rotations/phases (QFT).
///
/// # Examples
///
/// ```
/// use approxdd_dd::GateKind;
/// let h = GateKind::H.matrix();
/// assert!((h[0][0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GateKind {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X (√X, a.k.a. V).
    SxGate,
    /// Inverse square root of X.
    SxdgGate,
    /// Square root of Y.
    SyGate,
    /// Inverse square root of Y.
    SydgGate,
    /// Phase gate diag(1, e^{iθ}).
    Phase(f64),
    /// Rotation about X by θ.
    Rx(f64),
    /// Rotation about Y by θ.
    Ry(f64),
    /// Rotation about Z by θ (global-phase-free convention
    /// diag(e^{-iθ/2}, e^{iθ/2})).
    Rz(f64),
}

impl GateKind {
    /// The 2×2 unitary matrix of this gate, row-major.
    #[must_use]
    pub fn matrix(self) -> [[Cplx; 2]; 2] {
        use std::f64::consts::FRAC_1_SQRT_2;
        let zero = Cplx::ZERO;
        let one = Cplx::ONE;
        match self {
            GateKind::I => [[one, zero], [zero, one]],
            GateKind::X => [[zero, one], [one, zero]],
            GateKind::Y => [[zero, Cplx::new(0.0, -1.0)], [Cplx::I, zero]],
            GateKind::Z => [[one, zero], [zero, Cplx::real(-1.0)]],
            GateKind::H => {
                let s = Cplx::real(FRAC_1_SQRT_2);
                [[s, s], [s, -s]]
            }
            GateKind::S => [[one, zero], [zero, Cplx::I]],
            GateKind::Sdg => [[one, zero], [zero, Cplx::new(0.0, -1.0)]],
            GateKind::T => [
                [one, zero],
                [zero, Cplx::from_polar(1.0, std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::Tdg => [
                [one, zero],
                [zero, Cplx::from_polar(1.0, -std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::SxGate => {
                let a = Cplx::new(0.5, 0.5);
                let b = Cplx::new(0.5, -0.5);
                [[a, b], [b, a]]
            }
            GateKind::SxdgGate => {
                let a = Cplx::new(0.5, -0.5);
                let b = Cplx::new(0.5, 0.5);
                [[a, b], [b, a]]
            }
            GateKind::SyGate => {
                // √Y = ½ [[1+i, −1−i], [1+i, 1+i]]
                let a = Cplx::new(0.5, 0.5);
                [[a, -a], [a, a]]
            }
            GateKind::SydgGate => {
                // (√Y)† = ½ [[1−i, 1−i], [−1+i, 1−i]]
                let a = Cplx::new(0.5, -0.5);
                [[a, a], [-a, a]]
            }
            GateKind::Phase(theta) => [[one, zero], [zero, Cplx::from_polar(1.0, theta)]],
            GateKind::Rx(theta) => {
                let c = Cplx::real((theta / 2.0).cos());
                let s = Cplx::new(0.0, -(theta / 2.0).sin());
                [[c, s], [s, c]]
            }
            GateKind::Ry(theta) => {
                let c = Cplx::real((theta / 2.0).cos());
                let s = Cplx::real((theta / 2.0).sin());
                [[c, -s], [s, c]]
            }
            GateKind::Rz(theta) => [
                [Cplx::from_polar(1.0, -theta / 2.0), zero],
                [zero, Cplx::from_polar(1.0, theta / 2.0)],
            ],
        }
    }

    /// The inverse (conjugate transpose) gate where one exists in the
    /// alphabet, otherwise the parameterized inverse.
    #[must_use]
    pub fn inverse(self) -> GateKind {
        match self {
            GateKind::S => GateKind::Sdg,
            GateKind::Sdg => GateKind::S,
            GateKind::T => GateKind::Tdg,
            GateKind::Tdg => GateKind::T,
            GateKind::SxGate => GateKind::SxdgGate,
            GateKind::SxdgGate => GateKind::SxGate,
            GateKind::SyGate => GateKind::SydgGate,
            GateKind::SydgGate => GateKind::SyGate,
            GateKind::Phase(t) => GateKind::Phase(-t),
            GateKind::Rx(t) => GateKind::Rx(-t),
            GateKind::Ry(t) => GateKind::Ry(-t),
            GateKind::Rz(t) => GateKind::Rz(-t),
            other => other, // self-inverse: I, X, Y, Z, H
        }
    }
}

/// The body of a multi-qubit block gate.
enum BlockBody<'a> {
    /// Row-major dense `2^k × 2^k` matrix.
    Dense(&'a [Cplx]),
    /// Basis-state permutation: column `c` maps to row `perm[c]`.
    Perm(&'a [usize]),
}

impl BlockBody<'_> {
    fn entry(&self, row: usize, col: usize) -> Cplx {
        match self {
            BlockBody::Dense(m) => {
                let dim = (m.len() as f64).sqrt() as usize;
                m[row * dim + col]
            }
            BlockBody::Perm(p) => {
                if p[col] == row {
                    Cplx::ONE
                } else {
                    Cplx::ZERO
                }
            }
        }
    }

    /// Whether the sub-block `rows × cols` is entirely zero (cheap exact
    /// test for permutations; dense blocks scan).
    fn block_is_zero(&self, row0: usize, col0: usize, size: usize) -> bool {
        match self {
            BlockBody::Perm(p) => !(col0..col0 + size).any(|c| {
                let r = p[c];
                r >= row0 && r < row0 + size
            }),
            BlockBody::Dense(m) => {
                let dim = (m.len() as f64).sqrt() as usize;
                (row0..row0 + size)
                    .all(|r| (col0..col0 + size).all(|c| m[r * dim + c] == Cplx::ZERO))
            }
        }
    }
}

struct GateBuilder<'a> {
    lo: usize,
    k: usize,
    body: BlockBody<'a>,
    /// Controls sorted descending by qubit; `(qubit, required_value)`.
    controls: Vec<(usize, bool)>,
    /// Memo for below-block continuation chains keyed by quantized
    /// entry weight and diagonal flag.
    below_memo: FxHashMap<(i64, i64, bool), MEdge>,
}

impl Package {
    /// The identity operation DD on `n_qubits` qubits (cached; the cached
    /// nodes are GC roots for the package's lifetime).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds the supported maximum (255).
    #[must_use]
    pub fn identity(&mut self, n_qubits: usize) -> MEdge {
        assert!(n_qubits <= MAX_QUBITS, "identity: too many qubits");
        while self.ident_cache.len() <= n_qubits {
            let prev = *self.ident_cache.last().expect("cache is never empty");
            let var = (self.ident_cache.len() - 1) as u8;
            let e = self.make_mnode(var, [prev, MEdge::ZERO, MEdge::ZERO, prev]);
            self.inc_ref_m(e);
            self.ident_cache.push(e);
        }
        self.ident_cache[n_qubits]
    }

    /// Builds the DD of a single-qubit gate `u` on `target` within an
    /// `n_qubits`-wide register.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`] / [`DdError::TooManyQubits`] on
    /// malformed geometry.
    pub fn single_gate(
        &mut self,
        n_qubits: usize,
        target: usize,
        u: [[Cplx; 2]; 2],
    ) -> Result<MEdge> {
        self.controlled_gate(n_qubits, &[], target, u)
    }

    /// Builds a (multi-)controlled single-qubit gate with all controls
    /// positive (required value `|1⟩`).
    ///
    /// # Errors
    ///
    /// See [`Package::controlled_gate_polarized`].
    pub fn controlled_gate(
        &mut self,
        n_qubits: usize,
        controls: &[usize],
        target: usize,
        u: [[Cplx; 2]; 2],
    ) -> Result<MEdge> {
        let ctl: Vec<(usize, bool)> = controls.iter().map(|&c| (c, true)).collect();
        self.controlled_gate_polarized(n_qubits, &ctl, target, u)
    }

    /// Builds a controlled single-qubit gate with per-control polarity:
    /// `(qubit, true)` requires `|1⟩`, `(qubit, false)` requires `|0⟩`.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`], [`DdError::OverlappingQubits`] (a
    /// control equals the target or another control), or
    /// [`DdError::TooManyQubits`].
    pub fn controlled_gate_polarized(
        &mut self,
        n_qubits: usize,
        controls: &[(usize, bool)],
        target: usize,
        u: [[Cplx; 2]; 2],
    ) -> Result<MEdge> {
        let dense = [u[0][0], u[0][1], u[1][0], u[1][1]];
        self.block_gate(n_qubits, target, 1, BlockBody::Dense(&dense), controls)
    }

    /// Builds a gate whose body is a dense `2^k × 2^k` matrix acting on
    /// the contiguous qubits `[lo, lo + k)`, optionally controlled.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidMatrix`] if `entries.len() != 4^k`; geometry
    /// errors as in [`Package::controlled_gate_polarized`].
    pub fn dense_block_gate(
        &mut self,
        n_qubits: usize,
        lo: usize,
        k: usize,
        entries: &[Cplx],
        controls: &[(usize, bool)],
    ) -> Result<MEdge> {
        if k > 16 || entries.len() != (1usize << k) * (1usize << k) {
            return Err(DdError::InvalidMatrix {
                reason: "dense block must have 4^k entries with k <= 16",
            });
        }
        self.block_gate(n_qubits, lo, k, BlockBody::Dense(entries), controls)
    }

    /// Builds a gate whose body permutes the `2^k` basis states of the
    /// contiguous qubits `[lo, lo + k)`: basis state `|c⟩` maps to
    /// `|perm[c]⟩`. This is how modular-multiplication gates for Shor's
    /// algorithm are constructed without materializing a dense matrix.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidPermutation`] if `perm` is not a bijection on
    /// `0..2^k`; geometry errors as in
    /// [`Package::controlled_gate_polarized`].
    pub fn permutation_gate(
        &mut self,
        n_qubits: usize,
        lo: usize,
        k: usize,
        perm: &[usize],
        controls: &[(usize, bool)],
    ) -> Result<MEdge> {
        let dim = 1usize << k;
        if k > 26 || perm.len() != dim {
            return Err(DdError::InvalidPermutation);
        }
        let mut seen = vec![false; dim];
        for &p in perm {
            if p >= dim || seen[p] {
                return Err(DdError::InvalidPermutation);
            }
            seen[p] = true;
        }
        self.block_gate(n_qubits, lo, k, BlockBody::Perm(perm), controls)
    }

    fn block_gate(
        &mut self,
        n_qubits: usize,
        lo: usize,
        k: usize,
        body: BlockBody<'_>,
        controls: &[(usize, bool)],
    ) -> Result<MEdge> {
        if n_qubits > MAX_QUBITS {
            return Err(DdError::TooManyQubits {
                n_qubits,
                max: MAX_QUBITS,
            });
        }
        if k == 0 || lo + k > n_qubits {
            return Err(DdError::QubitOutOfRange {
                qubit: lo + k.saturating_sub(1),
                n_qubits,
            });
        }
        let mut seen = vec![false; n_qubits];
        seen[lo..lo + k].fill(true);
        for &(c, _) in controls {
            if c >= n_qubits {
                return Err(DdError::QubitOutOfRange { qubit: c, n_qubits });
            }
            if seen[c] {
                return Err(DdError::OverlappingQubits);
            }
            seen[c] = true;
        }
        // Pre-warm the identity cache up to full width (needed for
        // control-failure fallbacks at any level).
        let _ = self.identity(n_qubits);

        let mut builder = GateBuilder {
            lo,
            k,
            body,
            controls: controls.to_vec(),
            below_memo: FxHashMap::default(),
        };
        Ok(builder.build_upper(self, n_qubits as i64 - 1))
    }
}

impl GateBuilder<'_> {
    fn control_at(&self, v: i64) -> Option<bool> {
        self.controls
            .iter()
            .find(|(q, _)| *q as i64 == v)
            .map(|(_, pol)| *pol)
    }

    /// Builds levels above (and including the top of) the block, on the
    /// branch where all controls above the current level are satisfied.
    fn build_upper(&mut self, p: &mut Package, v: i64) -> MEdge {
        let block_top = (self.lo + self.k - 1) as i64;
        if v == block_top {
            let size = 1usize << self.k;
            return self.build_block(p, self.k as i64 - 1, 0, 0, size);
        }
        debug_assert!(v > block_top);
        let below = self.build_upper(p, v - 1);
        if let Some(pol) = self.control_at(v) {
            let ident = p.ident_cache[v as usize];
            let (e00, e11) = if pol { (ident, below) } else { (below, ident) };
            p.make_mnode(v as u8, [e00, MEdge::ZERO, MEdge::ZERO, e11])
        } else {
            p.make_mnode(v as u8, [below, MEdge::ZERO, MEdge::ZERO, below])
        }
    }

    /// Quadrant recursion inside the block. `level` counts block-internal
    /// levels (`k-1` at the top); `row0`/`col0`/`size` delimit the current
    /// sub-block of the body.
    fn build_block(
        &mut self,
        p: &mut Package,
        level: i64,
        row0: usize,
        col0: usize,
        size: usize,
    ) -> MEdge {
        if level < 0 {
            let w = self.body.entry(row0, col0);
            return self.build_below(p, w, row0 == col0);
        }
        // Zero sub-blocks can only be skipped when they cannot host an
        // identity fallback: either no control lives below the block, or
        // the sub-block does not touch the diagonal (row0 != col0).
        let has_below_controls = self.controls.iter().any(|(q, _)| *q < self.lo);
        let half = size / 2;
        let mut quads = [MEdge::ZERO; 4];
        for (i, q) in quads.iter_mut().enumerate() {
            let r = i >> 1;
            let c = i & 1;
            let (r0, c0) = (row0 + r * half, col0 + c * half);
            if (!has_below_controls || r0 != c0) && self.body.block_is_zero(r0, c0, half) {
                continue;
            }
            *q = self.build_block(p, level - 1, r0, c0, half);
        }
        p.make_mnode((self.lo as i64 + level) as u8, quads)
    }

    /// Builds the continuation below the block for a body entry with
    /// value `wsat` at a (row == col) position iff `diag`: paths on which
    /// all remaining (below-block) controls are satisfied terminate with
    /// weight `wsat`; a failing control falls back to identity when
    /// `diag`, and to zero otherwise.
    fn build_below(&mut self, p: &mut Package, wsat: Cplx, diag: bool) -> MEdge {
        if p.tolerance().is_zero(wsat) && !diag {
            return MEdge::ZERO;
        }
        let key = {
            let (a, b) = p.tolerance().key(wsat);
            (a, b, diag)
        };
        if let Some(&e) = self.below_memo.get(&key) {
            return e;
        }
        let e = self.build_below_rec(p, self.lo as i64 - 1, wsat, diag);
        self.below_memo.insert(key, e);
        e
    }

    fn build_below_rec(&mut self, p: &mut Package, v: i64, wsat: Cplx, diag: bool) -> MEdge {
        if v < 0 {
            return if p.tolerance().is_zero(wsat) {
                MEdge::ZERO
            } else {
                MEdge::terminal(wsat)
            };
        }
        let below = self.build_below_rec(p, v - 1, wsat, diag);
        if let Some(pol) = self.control_at(v) {
            let fallback = if diag {
                p.ident_cache[v as usize]
            } else {
                MEdge::ZERO
            };
            let (e00, e11) = if pol {
                (fallback, below)
            } else {
                (below, fallback)
            };
            p.make_mnode(v as u8, [e00, MEdge::ZERO, MEdge::ZERO, e11])
        } else {
            p.make_mnode(v as u8, [below, MEdge::ZERO, MEdge::ZERO, below])
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // dense-matrix comparisons read clearest indexed
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).mag() < 1e-10
    }

    /// Expands an n-qubit operator DD into a dense matrix by applying it
    /// to every basis state.
    fn to_dense(p: &mut Package, m: MEdge, n: usize) -> Vec<Vec<Cplx>> {
        let dim = 1usize << n;
        let mut cols = Vec::with_capacity(dim);
        for c in 0..dim {
            let v = p.basis_state(n, c as u64);
            let r = p.apply(m, v);
            cols.push(p.to_amplitudes(r, n).unwrap());
        }
        // cols[c][r] -> matrix[r][c]
        (0..dim)
            .map(|r| (0..dim).map(|c| cols[c][r]).collect())
            .collect()
    }

    #[test]
    fn x_gate_flips_target_only() {
        let mut p = Package::new();
        let x = p.single_gate(3, 1, GateKind::X.matrix()).unwrap();
        let m = to_dense(&mut p, x, 3);
        for c in 0..8usize {
            let want_row = c ^ 0b010;
            for r in 0..8 {
                let want = if r == want_row { Cplx::ONE } else { Cplx::ZERO };
                assert!(close(m[r][c], want), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn cnot_control_below_target() {
        let mut p = Package::new();
        // control q0 (low), target q1 (high)
        let cx = p.controlled_gate(2, &[0], 1, GateKind::X.matrix()).unwrap();
        let m = to_dense(&mut p, cx, 2);
        // |00>→|00>, |01>→|11>, |10>→|10>, |11>→|01>
        let expect = [(0usize, 0usize), (1, 3), (2, 2), (3, 1)];
        for (c, r_want) in expect {
            for r in 0..4 {
                let want = if r == r_want { Cplx::ONE } else { Cplx::ZERO };
                assert!(close(m[r][c], want), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn cnot_control_above_target() {
        let mut p = Package::new();
        let cx = p.controlled_gate(2, &[1], 0, GateKind::X.matrix()).unwrap();
        let m = to_dense(&mut p, cx, 2);
        // |00>→|00>, |01>→|01>, |10>→|11>, |11>→|10>
        let expect = [(0usize, 0usize), (1, 1), (2, 3), (3, 2)];
        for (c, r_want) in expect {
            assert!(close(m[r_want][c], Cplx::ONE));
        }
    }

    #[test]
    fn negative_control_fires_on_zero() {
        let mut p = Package::new();
        let cx = p
            .controlled_gate_polarized(2, &[(1, false)], 0, GateKind::X.matrix())
            .unwrap();
        let m = to_dense(&mut p, cx, 2);
        // fires when q1 = 0: |00>→|01>, |01>→|00>; identity on q1=1.
        assert!(close(m[1][0], Cplx::ONE));
        assert!(close(m[0][1], Cplx::ONE));
        assert!(close(m[2][2], Cplx::ONE));
        assert!(close(m[3][3], Cplx::ONE));
    }

    #[test]
    fn toffoli_from_two_controls() {
        let mut p = Package::new();
        let ccx = p
            .controlled_gate(3, &[0, 2], 1, GateKind::X.matrix())
            .unwrap();
        let m = to_dense(&mut p, ccx, 3);
        for c in 0..8usize {
            let fires = (c & 0b001 != 0) && (c & 0b100 != 0);
            let want_row = if fires { c ^ 0b010 } else { c };
            assert!(close(m[want_row][c], Cplx::ONE), "column {c}");
        }
    }

    #[test]
    fn controlled_phase_is_diagonal() {
        let mut p = Package::new();
        let theta = 0.731;
        let cp = p
            .controlled_gate(2, &[0], 1, GateKind::Phase(theta).matrix())
            .unwrap();
        let m = to_dense(&mut p, cp, 2);
        for c in 0..4usize {
            for r in 0..4 {
                let want = if r == c {
                    if c == 0b11 {
                        Cplx::from_polar(1.0, theta)
                    } else {
                        Cplx::ONE
                    }
                } else {
                    Cplx::ZERO
                };
                assert!(close(m[r][c], want), "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn permutation_gate_matches_map() {
        let mut p = Package::new();
        // A 2-qubit cyclic shift |c> -> |c+1 mod 4> on the low qubits of 3.
        let perm = [1usize, 2, 3, 0];
        let g = p.permutation_gate(3, 0, 2, &perm, &[]).unwrap();
        let m = to_dense(&mut p, g, 3);
        for c in 0..8usize {
            let low = c & 0b11;
            let want_row = (c & 0b100) | perm[low];
            assert!(close(m[want_row][c], Cplx::ONE), "column {c}");
        }
    }

    #[test]
    fn controlled_permutation_with_control_above() {
        let mut p = Package::new();
        let perm = [1usize, 0, 3, 2]; // X on low qubit of the block
        let g = p.permutation_gate(3, 0, 2, &perm, &[(2, true)]).unwrap();
        let m = to_dense(&mut p, g, 3);
        for c in 0..8usize {
            let want_row = if c & 0b100 != 0 {
                (c & 0b100) | perm[c & 0b11]
            } else {
                c
            };
            assert!(close(m[want_row][c], Cplx::ONE), "column {c}");
        }
    }

    #[test]
    fn permutation_rejects_non_bijection() {
        let mut p = Package::new();
        assert!(matches!(
            p.permutation_gate(2, 0, 1, &[0, 0], &[]),
            Err(DdError::InvalidPermutation)
        ));
        assert!(matches!(
            p.permutation_gate(2, 0, 1, &[0, 5], &[]),
            Err(DdError::InvalidPermutation)
        ));
    }

    #[test]
    fn geometry_errors() {
        let mut p = Package::new();
        assert!(matches!(
            p.single_gate(2, 5, GateKind::X.matrix()),
            Err(DdError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            p.controlled_gate(3, &[1], 1, GateKind::X.matrix()),
            Err(DdError::OverlappingQubits)
        ));
        assert!(matches!(
            p.controlled_gate(3, &[0, 0], 1, GateKind::X.matrix()),
            Err(DdError::OverlappingQubits)
        ));
    }

    #[test]
    fn all_standard_gates_are_unitary() {
        let mut p = Package::new();
        let gates = [
            GateKind::I,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::SxGate,
            GateKind::SxdgGate,
            GateKind::SyGate,
            GateKind::SydgGate,
            GateKind::Phase(0.3),
            GateKind::Rx(1.1),
            GateKind::Ry(-0.7),
            GateKind::Rz(2.9),
        ];
        for g in gates {
            let dd = p.single_gate(2, 0, g.matrix()).unwrap();
            let dag = p.conj_transpose(dd);
            let prod = p.mul_mm(dd, dag);
            let id = p.identity(2);
            assert_eq!(prod.node, id.node, "{g:?} not unitary");
            assert!(close(prod.w, id.w), "{g:?} not unitary: {}", prod.w);
        }
    }

    #[test]
    fn inverse_pairs_compose_to_identity() {
        let mut p = Package::new();
        for g in [
            GateKind::S,
            GateKind::T,
            GateKind::SxGate,
            GateKind::SyGate,
            GateKind::Phase(0.4),
            GateKind::Rz(1.3),
        ] {
            let a = p.single_gate(1, 0, g.matrix()).unwrap();
            let b = p.single_gate(1, 0, g.inverse().matrix()).unwrap();
            let prod = p.mul_mm(a, b);
            let id = p.identity(1);
            assert_eq!(prod.node, id.node, "{g:?}");
            assert!(close(prod.w, id.w), "{g:?}");
        }
    }

    #[test]
    fn identity_cache_is_stable() {
        let mut p = Package::new();
        let a = p.identity(4);
        let b = p.identity(4);
        assert_eq!(a, b);
        let small = p.identity(2);
        assert_eq!(p.mlevel(small), 2);
    }
}

//! In-arena node representations.

use crate::edge::{MEdge, VEdge};

/// A vector-DD node: a qubit level and two successor edges.
///
/// `edges[0]` is the sub-vector where this node's qubit is `|0⟩`,
/// `edges[1]` where it is `|1⟩`. Normalization guarantees
/// `|w0|² + |w1|² = 1` with canonical phase, so the function represented
/// by a node (top weight 1) always has unit ℓ2 norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct VNode {
    /// Qubit level; 0 is the least-significant qubit, directly above the
    /// terminal.
    pub var: u8,
    /// Successor edges for qubit value 0 and 1.
    pub edges: [VEdge; 2],
}

/// A matrix-DD node: a qubit level and four successor edges in row-major
/// quadrant order `[M00, M01, M10, M11]` (row = output bit, column =
/// input bit of this node's qubit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MNode {
    /// Qubit level; 0 is the least-significant qubit.
    pub var: u8,
    /// Quadrant successor edges `[e00, e01, e10, e11]`.
    pub edges: [MEdge; 4],
}

//! A small, fast, non-cryptographic hasher for the hot unique/compute
//! tables (FxHash-style multiply–xor), avoiding SipHash overhead on the
//! simulator's inner loop without adding a dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply–xor hasher in the style of rustc's FxHash.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed hash maps.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast hasher.
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(41, 287)], 41);
    }
}

//! Measurement: sampling, outcome probabilities, and collapse.
//!
//! Sampling descends the DD level by level; thanks to the unit-subtree-
//! norm normalization the branch probabilities at a node are exactly the
//! squared magnitudes of its two edge weights. One sample costs `O(n)`
//! for an `n`-qubit state, independent of the DD size — the reason DD
//! simulators report measurement shots cheaply.

use std::collections::HashMap;

use rand::Rng;

use crate::edge::VEdge;
use crate::error::DdError;
use crate::fasthash::FxHashMap;
use crate::package::Package;
use crate::Result;

impl Package {
    /// Draws one measurement outcome (a basis-state index) from a
    /// unit-norm state without collapsing it.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the state has more than 63 qubits.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, root: VEdge, rng: &mut R) -> u64 {
        debug_assert!(self.vlevel(root) <= 63);
        let mut out = 0u64;
        let mut node = root.node;
        while !node.is_terminal() {
            let n = self.vnode(node);
            let p0 = n.edges[0].w.mag2();
            let p1 = n.edges[1].w.mag2();
            let total = p0 + p1;
            let bit = if total <= 0.0 {
                0
            } else {
                usize::from(rng.gen::<f64>() * total >= p0)
            };
            if bit == 1 {
                out |= 1u64 << n.var;
            }
            node = n.edges[bit].node;
        }
        out
    }

    /// Draws `shots` measurement outcomes and returns a histogram of
    /// basis-state indices.
    #[must_use]
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        root: VEdge,
        shots: usize,
        rng: &mut R,
    ) -> HashMap<u64, usize> {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample(root, rng)).or_insert(0) += 1;
        }
        counts
    }

    /// The Born-rule probability of observing basis state `idx`.
    #[must_use]
    pub fn probability(&self, root: VEdge, idx: u64) -> f64 {
        self.amplitude(root, idx).mag2()
    }

    /// The probability that qubit `q` measures as `|1⟩`.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`] if `q` is not a level of the state.
    pub fn qubit_one_probability(&self, root: VEdge, q: usize) -> Result<f64> {
        let n = self.vlevel(root);
        if q >= n {
            return Err(DdError::QubitOutOfRange {
                qubit: q,
                n_qubits: n,
            });
        }
        // Accumulate upstream mass down to level q, then take the |1⟩
        // branch mass (subtrees below have unit norm).
        let contribs = self.contributions(root);
        let mut p1 = 0.0;
        for &id in contribs.level(q) {
            let up = contribs.contribution(id);
            let node = self.vnode(id);
            p1 += up * node.edges[1].w.mag2();
        }
        Ok(p1)
    }

    /// The probability that the qubits selected by `mask` read the
    /// corresponding bits of `value` (a marginal over the remaining
    /// qubits). `O(DD size)` per query.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `value` has bits outside `mask`.
    #[must_use]
    pub fn marginal_probability(&self, root: VEdge, mask: u64, value: u64) -> f64 {
        debug_assert_eq!(value & !mask, 0, "value bits must lie within the mask");
        let mut memo: FxHashMap<crate::edge::NodeId, f64> = FxHashMap::default();
        root.w.mag2() * self.marginal_rec(root.node, mask, value, &mut memo)
    }

    fn marginal_rec(
        &self,
        node: crate::edge::NodeId,
        mask: u64,
        value: u64,
        memo: &mut FxHashMap<crate::edge::NodeId, f64>,
    ) -> f64 {
        if node.is_terminal() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&node) {
            return p;
        }
        let n = self.vnode(node);
        let bit = 1u64 << n.var;
        let mut p = 0.0;
        for (i, e) in n.edges.iter().enumerate() {
            if e.is_zero(self.tolerance()) {
                continue;
            }
            if mask & bit != 0 && (value & bit != 0) != (i == 1) {
                continue; // constrained qubit with the wrong branch
            }
            p += e.w.mag2() * self.marginal_rec(e.node, mask, value, memo);
        }
        memo.insert(node, p);
        p
    }

    /// The full marginal distribution over a small set of qubits
    /// (little-endian within the subset: bit `i` of an outcome index is
    /// `qubits[i]`).
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`] for bad qubit indices;
    /// [`DdError::TooManyQubits`] for subsets above 24 qubits.
    pub fn marginal_distribution(&self, root: VEdge, qubits: &[usize]) -> Result<Vec<f64>> {
        let n = self.vlevel(root);
        if qubits.len() > 24 {
            return Err(DdError::TooManyQubits {
                n_qubits: qubits.len(),
                max: 24,
            });
        }
        for &q in qubits {
            if q >= n {
                return Err(DdError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: n,
                });
            }
        }
        let mask: u64 = qubits.iter().map(|&q| 1u64 << q).sum();
        let mut out = Vec::with_capacity(1 << qubits.len());
        for outcome in 0..(1u64 << qubits.len()) {
            let mut value = 0u64;
            for (i, &q) in qubits.iter().enumerate() {
                if (outcome >> i) & 1 == 1 {
                    value |= 1 << q;
                }
            }
            out.push(self.marginal_probability(root, mask, value));
        }
        Ok(out)
    }

    /// Measures **all** qubits: samples an outcome and returns it with
    /// the collapsed (basis) state.
    pub fn measure_all<R: Rng + ?Sized>(&mut self, root: VEdge, rng: &mut R) -> (u64, VEdge) {
        let n = self.vlevel(root);
        let outcome = self.sample(root, rng);
        let collapsed = self.basis_state(n, outcome);
        (outcome, collapsed)
    }

    /// Measures a single qubit: samples its value, collapses the state
    /// (projects and renormalizes) and returns `(bit, collapsed_state)`.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`] if `q` is not a level of the state.
    pub fn measure_qubit<R: Rng + ?Sized>(
        &mut self,
        root: VEdge,
        q: usize,
        rng: &mut R,
    ) -> Result<(bool, VEdge)> {
        let p1 = self.qubit_one_probability(root, q)?;
        let bit = rng.gen::<f64>() < p1;
        let projected = self.project_qubit(root, q, bit)?;
        Ok((bit, projected))
    }

    /// Projects qubit `q` onto `|bit⟩` and renormalizes — the
    /// post-measurement state given a known outcome.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitOutOfRange`] for a bad qubit index;
    /// [`DdError::InvalidParameter`] if the outcome has probability ~0.
    pub fn project_qubit(&mut self, root: VEdge, q: usize, bit: bool) -> Result<VEdge> {
        let n = self.vlevel(root);
        if q >= n {
            return Err(DdError::QubitOutOfRange {
                qubit: q,
                n_qubits: n,
            });
        }
        let mut memo: FxHashMap<crate::edge::NodeId, VEdge> = FxHashMap::default();
        let rebuilt = self.project_rec(root.node, q as u8, bit, &mut memo);
        let kept = rebuilt.w.mag2();
        if kept <= 0.0 {
            return Err(DdError::InvalidParameter {
                reason: "projection outcome has zero probability",
            });
        }
        Ok(VEdge {
            w: root.w * rebuilt.w / approxdd_complex::Cplx::real(kept.sqrt()),
            node: rebuilt.node,
        })
    }

    fn project_rec(
        &mut self,
        node: crate::edge::NodeId,
        q: u8,
        bit: bool,
        memo: &mut FxHashMap<crate::edge::NodeId, VEdge>,
    ) -> VEdge {
        if node.is_terminal() {
            return VEdge::ONE;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.vnode(node);
        let e = if n.var == q {
            let keep = usize::from(bit);
            let kept_child = n.edges[keep];
            let sub = if kept_child.is_zero(self.tolerance()) {
                VEdge::ZERO
            } else {
                kept_child
            };
            let (e0, e1) = if bit {
                (VEdge::ZERO, sub)
            } else {
                (sub, VEdge::ZERO)
            };
            self.make_vnode(n.var, e0, e1)
        } else {
            debug_assert!(n.var > q);
            let mut children = [VEdge::ZERO; 2];
            for (i, c) in n.edges.iter().enumerate() {
                if c.is_zero(self.tolerance()) {
                    continue;
                }
                let sub = self.project_rec(c.node, q, bit, memo);
                children[i] = sub.scaled(c.w);
            }
            self.make_vnode(n.var, children[0], children[1])
        };
        memo.insert(node, e);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxdd_complex::Cplx;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell(p: &mut Package) -> VEdge {
        let s = Cplx::FRAC_1_SQRT_2;
        p.from_amplitudes(&[s, Cplx::ZERO, Cplx::ZERO, s]).unwrap()
    }

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let mut p = Package::new();
        let v = p.basis_state(6, 41);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(p.sample(v, &mut rng), 41);
        }
    }

    #[test]
    fn bell_state_samples_only_00_and_11() {
        let mut p = Package::new();
        let v = bell(&mut p);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = p.sample_counts(v, 4000, &mut rng);
        assert_eq!(counts.keys().filter(|k| ![0u64, 3].contains(k)).count(), 0);
        let c00 = *counts.get(&0).unwrap_or(&0) as f64;
        let c11 = *counts.get(&3).unwrap_or(&0) as f64;
        // 50/50 within loose statistical bounds.
        assert!((c00 / 4000.0 - 0.5).abs() < 0.05, "c00={c00}");
        assert!((c11 / 4000.0 - 0.5).abs() < 0.05, "c11={c11}");
    }

    #[test]
    fn probability_matches_amplitude() {
        let mut p = Package::new();
        let v = bell(&mut p);
        assert!((p.probability(v, 0) - 0.5).abs() < 1e-12);
        assert!((p.probability(v, 3) - 0.5).abs() < 1e-12);
        assert!(p.probability(v, 1) < 1e-12);
    }

    #[test]
    fn qubit_one_probability_on_bell() {
        let mut p = Package::new();
        let v = bell(&mut p);
        assert!((p.qubit_one_probability(v, 0).unwrap() - 0.5).abs() < 1e-12);
        assert!((p.qubit_one_probability(v, 1).unwrap() - 0.5).abs() < 1e-12);
        assert!(p.qubit_one_probability(v, 2).is_err());
    }

    #[test]
    fn marginal_probability_on_bell() {
        let mut p = Package::new();
        let v = bell(&mut p);
        // Marginal of qubit 0 alone: 50/50.
        assert!((p.marginal_probability(v, 0b01, 0b00) - 0.5).abs() < 1e-12);
        assert!((p.marginal_probability(v, 0b01, 0b01) - 0.5).abs() < 1e-12);
        // Joint (full mask) equals the Born probability.
        assert!((p.marginal_probability(v, 0b11, 0b11) - 0.5).abs() < 1e-12);
        assert!(p.marginal_probability(v, 0b11, 0b01) < 1e-12);
        // Empty mask: total probability 1.
        assert!((p.marginal_probability(v, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_distribution_sums_to_one() {
        let mut p = Package::new();
        let amps: Vec<Cplx> = (0..16)
            .map(|i| Cplx::new((i as f64 * 0.31).sin(), (i as f64 * 0.77).cos()))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.mag2()).sum::<f64>().sqrt();
        let amps: Vec<Cplx> = amps.iter().map(|a| *a / norm).collect();
        let v = p.from_amplitudes(&amps).unwrap();
        let dist = p.marginal_distribution(v, &[1, 3]).unwrap();
        assert_eq!(dist.len(), 4);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
        // Cross-check one entry against a dense marginal.
        let mut want = 0.0;
        for (i, a) in amps.iter().enumerate() {
            if i & 0b0010 != 0 && i & 0b1000 == 0 {
                want += a.mag2();
            }
        }
        assert!((dist[0b01] - want).abs() < 1e-10);
    }

    #[test]
    fn marginal_distribution_guards() {
        let mut p = Package::new();
        let v = p.basis_state(3, 1);
        assert!(p.marginal_distribution(v, &[5]).is_err());
    }

    #[test]
    fn measure_all_collapses_to_sampled_basis() {
        let mut p = Package::new();
        let v = bell(&mut p);
        let mut rng = StdRng::seed_from_u64(3);
        let (outcome, collapsed) = p.measure_all(v, &mut rng);
        assert!(outcome == 0 || outcome == 3);
        assert!((p.probability(collapsed, outcome) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_qubit_entangles_correctly() {
        let mut p = Package::new();
        let v = bell(&mut p);
        // Projecting qubit 0 of a Bell pair onto |1> forces qubit 1 to |1>.
        let proj = p.project_qubit(v, 0, true).unwrap();
        assert!((p.probability(proj, 0b11) - 1.0).abs() < 1e-12);
        let proj0 = p.project_qubit(v, 0, false).unwrap();
        assert!((p.probability(proj0, 0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_impossible_outcome_errors() {
        let mut p = Package::new();
        let v = p.basis_state(2, 0);
        assert!(p.project_qubit(v, 0, true).is_err());
    }

    #[test]
    fn measure_qubit_statistics() {
        let mut p = Package::new();
        // |+>|0>: qubit 1 in superposition, qubit 0 fixed.
        let s = Cplx::FRAC_1_SQRT_2;
        let v = p.from_amplitudes(&[s, Cplx::ZERO, s, Cplx::ZERO]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        for _ in 0..1000 {
            let (bit, collapsed) = p.measure_qubit(v, 1, &mut rng).unwrap();
            if bit {
                ones += 1;
            }
            // qubit 0 remains |0>.
            assert!((p.qubit_one_probability(collapsed, 0).unwrap()).abs() < 1e-12);
        }
        assert!((ones as f64 / 1000.0 - 0.5).abs() < 0.08, "ones={ones}");
    }
}

//! Edge and node-id handle types.

use approxdd_complex::{Cplx, Tolerance};

/// Index of a node inside a [`crate::Package`] arena.
///
/// `NodeId::TERMINAL` is the shared terminal (the "1" sink); it is not
/// stored in any arena. Vector and matrix nodes live in separate arenas,
/// so a `NodeId` is only meaningful together with the edge type that
/// carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal sink node.
    pub const TERMINAL: NodeId = NodeId(u32::MAX);

    /// Whether this id designates the terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }

    /// Raw index (for diagnostics / DOT export).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An edge into a **vector** (quantum-state) decision diagram: a complex
/// weight and the pointed-to node.
///
/// The amplitude of a basis state is the product of edge weights along
/// its root-to-terminal path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VEdge {
    /// Multiplicative weight of this edge.
    pub w: Cplx,
    /// Target node.
    pub node: NodeId,
}

impl VEdge {
    /// The zero edge: weight 0 pointing at the terminal. All "structurally
    /// zero" sub-vectors are represented by exactly this edge.
    pub const ZERO: VEdge = VEdge {
        w: Cplx::ZERO,
        node: NodeId::TERMINAL,
    };

    /// A terminal edge with the given weight (a 0-qubit "state").
    #[must_use]
    pub fn terminal(w: Cplx) -> Self {
        Self {
            w,
            node: NodeId::TERMINAL,
        }
    }

    /// The terminal edge with weight one.
    pub const ONE: VEdge = VEdge {
        w: Cplx::ONE,
        node: NodeId::TERMINAL,
    };

    /// Whether this edge is (numerically) the zero edge.
    #[must_use]
    pub fn is_zero(&self, tol: Tolerance) -> bool {
        tol.is_zero(self.w)
    }

    /// Returns this edge with its weight multiplied by `f`.
    #[must_use]
    pub fn scaled(self, f: Cplx) -> Self {
        Self {
            w: self.w * f,
            node: self.node,
        }
    }
}

/// An edge into a **matrix** (quantum-operation) decision diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MEdge {
    /// Multiplicative weight of this edge.
    pub w: Cplx,
    /// Target node.
    pub node: NodeId,
}

impl MEdge {
    /// The zero edge (all-zero sub-matrix).
    pub const ZERO: MEdge = MEdge {
        w: Cplx::ZERO,
        node: NodeId::TERMINAL,
    };

    /// The terminal edge with weight one (a 1×1 identity).
    pub const ONE: MEdge = MEdge {
        w: Cplx::ONE,
        node: NodeId::TERMINAL,
    };

    /// A terminal edge with the given weight (1×1 matrix).
    #[must_use]
    pub fn terminal(w: Cplx) -> Self {
        Self {
            w,
            node: NodeId::TERMINAL,
        }
    }

    /// Whether this edge is (numerically) the zero edge.
    #[must_use]
    pub fn is_zero(&self, tol: Tolerance) -> bool {
        tol.is_zero(self.w)
    }

    /// Returns this edge with its weight multiplied by `f`.
    #[must_use]
    pub fn scaled(self, f: Cplx) -> Self {
        Self {
            w: self.w * f,
            node: self.node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_identification() {
        assert!(NodeId::TERMINAL.is_terminal());
        assert!(!NodeId(0).is_terminal());
    }

    #[test]
    fn zero_edges_point_at_terminal() {
        let tol = Tolerance::default();
        assert!(VEdge::ZERO.is_zero(tol));
        assert!(VEdge::ZERO.node.is_terminal());
        assert!(MEdge::ZERO.is_zero(tol));
        assert!(!VEdge::ONE.is_zero(tol));
    }

    #[test]
    fn scaling_multiplies_weight() {
        let e = VEdge::terminal(Cplx::new(0.5, 0.0));
        let s = e.scaled(Cplx::new(0.0, 2.0));
        assert_eq!(s.w, Cplx::new(0.0, 1.0));
        assert_eq!(s.node, e.node);
    }
}

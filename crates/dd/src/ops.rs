//! Decision-diagram arithmetic: addition, matrix–vector and
//! matrix–matrix multiplication, inner products, Kronecker products and
//! conjugate transposition.
//!
//! All operations are memoized in the package's compute tables. Top edge
//! weights are factored out of cache keys wherever the operation is
//! multilinear, which maximizes hit rates (the standard QMDD trick).

use approxdd_complex::Cplx;

use crate::edge::{MEdge, NodeId, VEdge};
use crate::fasthash::FxHashMap;
use crate::package::Package;

impl Package {
    // ------------------------------------------------------------------
    // addition
    // ------------------------------------------------------------------

    /// Adds two state DDs of the same level: `|r⟩ = |a⟩ + |b⟩`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands' levels differ (zero stubs are
    /// level-agnostic and always fine).
    #[must_use]
    pub fn add(&mut self, a: VEdge, b: VEdge) -> VEdge {
        if a.is_zero(self.tolerance()) {
            return b;
        }
        if b.is_zero(self.tolerance()) {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = a.w + b.w;
            return if self.tolerance().is_zero(w) {
                VEdge::ZERO
            } else {
                VEdge::terminal(w)
            };
        }
        debug_assert_eq!(self.vlevel(a), self.vlevel(b), "add level mismatch");

        // Same node: amplitudes are proportional, just add the weights.
        if a.node == b.node {
            let w = a.w + b.w;
            return if self.tolerance().is_zero(w) {
                VEdge::ZERO
            } else {
                VEdge { w, node: a.node }
            };
        }

        // Canonical operand order for the symmetric cache: larger weight
        // magnitude first (numerical stability of the ratio), ties broken
        // by node id.
        let (a, b) = if (a.w.mag2(), a.node.0) >= (b.w.mag2(), b.node.0) {
            (a, b)
        } else {
            (b, a)
        };
        // The ratio is interned through the package's canonicalization
        // map (tolerance bucket → first exact ratio seen), and both the
        // cache key and the recursion use the canonical value. That is
        // what makes the lossy cache both *effective* and *sound*:
        // near-equal ratios — low-order float noise from different
        // computation paths, the overwhelmingly common repeat — share
        // one key and one recursion input, so they hit; and because
        // the canonical ratio is a stable pure function of the
        // operation sequence (never influenced by compute-cache state),
        // a hit returns bit-for-bit what recomputation would produce,
        // keeping results independent of cache size and eviction
        // history. (Keying the exact ratio bits instead was measured
        // at a ~100× lower add hit rate — near-equal ratios almost
        // never repeat exactly; keying a quantized ratio while
        // recursing on the exact one — the pre-lossy design — made
        // result bits depend on which ratio populated the entry
        // first.) The result is independent of `a.w` — it is
        // `A + ratio·B` over the two unit-normalized node functions —
        // so the top weight stays out of the key (the standard QMDD
        // multilinearity trick).
        let (rk, ratio) = self.canonical_ratio(b.w / a.w);
        #[allow(clippy::cast_sign_loss)]
        let key = (a.node.0, b.node.0, rk.0 as u64, rk.1 as u64);
        if let Some(cached) = self.ct_add.lookup(&key) {
            return cached.scaled(a.w);
        }

        let an = *self.vnode(a.node);
        let bn = *self.vnode(b.node);
        let r0 = self.add(an.edges[0], bn.edges[0].scaled(ratio));
        let r1 = self.add(an.edges[1], bn.edges[1].scaled(ratio));
        let res = self.make_vnode(an.var, r0, r1);
        self.ct_add.insert(key, res);
        res.scaled(a.w)
    }

    // ------------------------------------------------------------------
    // matrix–vector multiplication (gate application)
    // ------------------------------------------------------------------

    /// Applies an operation DD to a state DD: `|r⟩ = M · |v⟩`.
    ///
    /// This is the simulation step of Section II/IV-A: one call per gate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operands' levels differ.
    #[must_use]
    pub fn apply(&mut self, m: MEdge, v: VEdge) -> VEdge {
        self.mul_mv(m, v)
    }

    /// Matrix–vector product (see [`Package::apply`]).
    #[must_use]
    pub fn mul_mv(&mut self, m: MEdge, v: VEdge) -> VEdge {
        if m.is_zero(self.tolerance()) || v.is_zero(self.tolerance()) {
            return VEdge::ZERO;
        }
        if m.node.is_terminal() && v.node.is_terminal() {
            return VEdge::terminal(m.w * v.w);
        }
        debug_assert_eq!(self.mlevel(m), self.vlevel(v), "mul level mismatch");

        let key = (m.node.0, v.node.0);
        if let Some(cached) = self.ct_mul_mv.lookup(&key) {
            return cached.scaled(m.w * v.w);
        }

        let mn = *self.mnode(m.node);
        let vn = *self.vnode(v.node);
        // r0 = M00·v0 + M01·v1 ; r1 = M10·v0 + M11·v1
        let p00 = self.mul_mv(mn.edges[0], vn.edges[0]);
        let p01 = self.mul_mv(mn.edges[1], vn.edges[1]);
        let r0 = self.add(p00, p01);
        let p10 = self.mul_mv(mn.edges[2], vn.edges[0]);
        let p11 = self.mul_mv(mn.edges[3], vn.edges[1]);
        let r1 = self.add(p10, p11);
        let res = self.make_vnode(mn.var, r0, r1);
        self.ct_mul_mv.insert(key, res);
        res.scaled(m.w * v.w)
    }

    // ------------------------------------------------------------------
    // matrix–matrix multiplication (gate fusion)
    // ------------------------------------------------------------------

    /// Matrix–matrix product `A · B` (apply `B` first, then `A`).
    ///
    /// Useful for fusing gate sequences into a single operation DD, the
    /// technique explored in Zulehner & Wille, DATE 2019 ("matrix-vector
    /// vs. matrix-matrix multiplication"), which the paper's Shor
    /// benchmarks build on.
    #[must_use]
    pub fn mul_mm(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if a.is_zero(self.tolerance()) || b.is_zero(self.tolerance()) {
            return MEdge::ZERO;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return MEdge::terminal(a.w * b.w);
        }
        debug_assert_eq!(self.mlevel(a), self.mlevel(b), "mul_mm level mismatch");

        let key = (a.node.0, b.node.0);
        if let Some(cached) = self.ct_mul_mm.lookup(&key) {
            return cached.scaled(a.w * b.w);
        }

        let an = *self.mnode(a.node);
        let bn = *self.mnode(b.node);
        let mut quads = [MEdge::ZERO; 4];
        for (i, q) in quads.iter_mut().enumerate() {
            let row = i >> 1;
            let col = i & 1;
            // C[row][col] = sum_k A[row][k] * B[k][col]
            let t0 = self.mul_mm(an.edges[row << 1], bn.edges[col]);
            let t1 = self.mul_mm(an.edges[(row << 1) | 1], bn.edges[(1 << 1) | col]);
            *q = self.madd(t0, t1);
        }
        let res = self.make_mnode(an.var, quads);
        self.ct_mul_mm.insert(key, res);
        res.scaled(a.w * b.w)
    }

    /// Adds two matrix DDs of the same level (no dedicated cache: used
    /// only inside matrix–matrix multiplication and tests).
    #[must_use]
    pub fn madd(&mut self, a: MEdge, b: MEdge) -> MEdge {
        if a.is_zero(self.tolerance()) {
            return b;
        }
        if b.is_zero(self.tolerance()) {
            return a;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            let w = a.w + b.w;
            return if self.tolerance().is_zero(w) {
                MEdge::ZERO
            } else {
                MEdge::terminal(w)
            };
        }
        debug_assert_eq!(self.mlevel(a), self.mlevel(b), "madd level mismatch");
        if a.node == b.node {
            let w = a.w + b.w;
            return if self.tolerance().is_zero(w) {
                MEdge::ZERO
            } else {
                MEdge { w, node: a.node }
            };
        }
        let an = *self.mnode(a.node);
        let bn = *self.mnode(b.node);
        let mut quads = [MEdge::ZERO; 4];
        for (i, quad) in quads.iter_mut().enumerate() {
            *quad = self.madd(an.edges[i].scaled(a.w), bn.edges[i].scaled(b.w));
        }
        self.make_mnode(an.var, quads)
    }

    // ------------------------------------------------------------------
    // inner products & fidelity
    // ------------------------------------------------------------------

    /// The Hermitian inner product `⟨a|b⟩ = Σ_i conj(a_i) · b_i`.
    #[must_use]
    pub fn inner_product(&mut self, a: VEdge, b: VEdge) -> Cplx {
        if a.is_zero(self.tolerance()) || b.is_zero(self.tolerance()) {
            return Cplx::ZERO;
        }
        if a.node.is_terminal() && b.node.is_terminal() {
            return a.w.conj() * b.w;
        }
        debug_assert_eq!(self.vlevel(a), self.vlevel(b), "inner level mismatch");

        let key = (a.node.0, b.node.0);
        if let Some(cached) = self.ct_inner.lookup(&key) {
            return a.w.conj() * b.w * cached;
        }

        let an = *self.vnode(a.node);
        let bn = *self.vnode(b.node);
        let i0 = self.inner_product(an.edges[0], bn.edges[0]);
        let i1 = self.inner_product(an.edges[1], bn.edges[1]);
        let sum = i0 + i1;
        self.ct_inner.insert(key, sum);
        a.w.conj() * b.w * sum
    }

    /// Fidelity `F(a, b) = |⟨a|b⟩|²` between two pure states
    /// (Definition 1 of the paper).
    #[must_use]
    pub fn fidelity(&mut self, a: VEdge, b: VEdge) -> f64 {
        self.inner_product(a, b).mag2()
    }

    // ------------------------------------------------------------------
    // Kronecker products
    // ------------------------------------------------------------------

    /// Kronecker product of two state DDs: `top ⊗ bottom`, with `bottom`
    /// occupying the low qubits. The result's level is the sum of the
    /// operands' levels.
    #[must_use]
    pub fn vkron(&mut self, top: VEdge, bottom: VEdge) -> VEdge {
        if top.is_zero(self.tolerance()) || bottom.is_zero(self.tolerance()) {
            return VEdge::ZERO;
        }
        let shift = self.vlevel(bottom) as u8;
        let mut memo: FxHashMap<NodeId, VEdge> = FxHashMap::default();
        let rebuilt = self.vkron_rec(top.node, bottom, shift, &mut memo);
        rebuilt.scaled(top.w)
    }

    fn vkron_rec(
        &mut self,
        node: NodeId,
        bottom: VEdge,
        shift: u8,
        memo: &mut FxHashMap<NodeId, VEdge>,
    ) -> VEdge {
        if node.is_terminal() {
            return bottom;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.vnode(node);
        let mut children = [VEdge::ZERO; 2];
        for (i, c) in n.edges.iter().enumerate() {
            if c.is_zero(self.tolerance()) {
                continue;
            }
            let sub = self.vkron_rec(c.node, bottom, shift, memo);
            children[i] = sub.scaled(c.w);
        }
        let e = self.make_vnode(n.var + shift, children[0], children[1]);
        memo.insert(node, e);
        e
    }

    /// Kronecker product of two operation DDs: `top ⊗ bottom`.
    #[must_use]
    pub fn mkron(&mut self, top: MEdge, bottom: MEdge) -> MEdge {
        if top.is_zero(self.tolerance()) || bottom.is_zero(self.tolerance()) {
            return MEdge::ZERO;
        }
        let shift = self.mlevel(bottom) as u8;
        let mut memo: FxHashMap<NodeId, MEdge> = FxHashMap::default();
        let rebuilt = self.mkron_rec(top.node, bottom, shift, &mut memo);
        rebuilt.scaled(top.w)
    }

    fn mkron_rec(
        &mut self,
        node: NodeId,
        bottom: MEdge,
        shift: u8,
        memo: &mut FxHashMap<NodeId, MEdge>,
    ) -> MEdge {
        if node.is_terminal() {
            return bottom;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.mnode(node);
        let mut children = [MEdge::ZERO; 4];
        for (i, c) in n.edges.iter().enumerate() {
            if c.is_zero(self.tolerance()) {
                continue;
            }
            let sub = self.mkron_rec(c.node, bottom, shift, memo);
            children[i] = sub.scaled(c.w);
        }
        let e = self.make_mnode(n.var + shift, children);
        memo.insert(node, e);
        e
    }

    // ------------------------------------------------------------------
    // conjugate transpose
    // ------------------------------------------------------------------

    /// Conjugate transpose `M†` of an operation DD. `U · U† = I` for a
    /// unitary `U`, which the test-suite uses as a gate-builder oracle.
    #[must_use]
    pub fn conj_transpose(&mut self, m: MEdge) -> MEdge {
        let mut memo: FxHashMap<NodeId, MEdge> = FxHashMap::default();
        let rebuilt = self.conj_transpose_rec(m.node, &mut memo);
        rebuilt.scaled(m.w.conj())
    }

    fn conj_transpose_rec(&mut self, node: NodeId, memo: &mut FxHashMap<NodeId, MEdge>) -> MEdge {
        if node.is_terminal() {
            return MEdge::ONE;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.mnode(node);
        // Transpose swaps the off-diagonal quadrants; conjugation applies
        // to every weight.
        let order = [0usize, 2, 1, 3];
        let mut children = [MEdge::ZERO; 4];
        for (i, &src) in order.iter().enumerate() {
            let c = n.edges[src];
            if c.is_zero(self.tolerance()) {
                continue;
            }
            let sub = self.conj_transpose_rec(c.node, memo);
            children[i] = sub.scaled(c.w.conj());
        }
        let e = self.make_mnode(n.var, children);
        memo.insert(node, e);
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateKind;

    fn close(a: Cplx, b: Cplx) -> bool {
        (a - b).mag() < 1e-10
    }

    #[test]
    fn add_is_commutative_and_matches_dense() {
        let mut p = Package::new();
        let a_amps = [
            Cplx::new(0.1, 0.0),
            Cplx::new(0.2, 0.1),
            Cplx::new(0.0, -0.3),
            Cplx::new(0.4, 0.0),
        ];
        let b_amps = [
            Cplx::new(-0.1, 0.2),
            Cplx::new(0.0, 0.0),
            Cplx::new(0.3, 0.3),
            Cplx::new(0.1, -0.1),
        ];
        let a = p.from_amplitudes(&a_amps).unwrap();
        let b = p.from_amplitudes(&b_amps).unwrap();
        let ab = p.add(a, b);
        let ba = p.add(b, a);
        let dense_ab = p.to_amplitudes(ab, 2).unwrap();
        let dense_ba = p.to_amplitudes(ba, 2).unwrap();
        for i in 0..4 {
            let want = a_amps[i] + b_amps[i];
            assert!(close(dense_ab[i], want));
            assert!(close(dense_ba[i], want));
        }
    }

    #[test]
    fn add_with_zero_is_identity() {
        let mut p = Package::new();
        let a = p.basis_state(3, 5);
        let sum = p.add(a, VEdge::ZERO);
        assert_eq!(sum, a);
        let sum = p.add(VEdge::ZERO, a);
        assert_eq!(sum, a);
    }

    #[test]
    fn add_cancels_to_zero() {
        let mut p = Package::new();
        let a = p.basis_state(2, 1);
        let neg = a.scaled(Cplx::new(-1.0, 0.0));
        let sum = p.add(a, neg);
        assert!(sum.is_zero(p.tolerance()));
    }

    #[test]
    fn apply_identity_preserves_state() {
        let mut p = Package::new();
        let v = p.basis_state(3, 6);
        let id = p.identity(3);
        let r = p.apply(id, v);
        assert!((p.fidelity(r, v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut p = Package::new();
        let v = p.basis_state(2, 2);
        let h = p.single_gate(2, 1, GateKind::H.matrix()).unwrap();
        let r = p.apply(h, v);
        let r = p.apply(h, r);
        assert!((p.fidelity(r, v) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inner_product_is_sesquilinear() {
        let mut p = Package::new();
        let a_amps = [Cplx::new(0.6, 0.0), Cplx::new(0.0, 0.8)];
        let b_amps = [Cplx::new(0.0, 1.0), Cplx::ZERO];
        let a = p.from_amplitudes(&a_amps).unwrap();
        let b = p.from_amplitudes(&b_amps).unwrap();
        let ip = p.inner_product(a, b);
        // <a|b> = conj(0.6)*i + conj(0.8i)*0 = 0.6i
        assert!(close(ip, Cplx::new(0.0, 0.6)));
        // Swapping conjugates.
        let ip_rev = p.inner_product(b, a);
        assert!(close(ip_rev, ip.conj()));
    }

    #[test]
    fn norm_of_unit_state_is_one() {
        let mut p = Package::new();
        let v = p.basis_state(4, 9);
        assert!((p.norm(v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vkron_composes_basis_states() {
        let mut p = Package::new();
        let top = p.basis_state(2, 0b10);
        let bottom = p.basis_state(3, 0b011);
        let joint = p.vkron(top, bottom);
        assert_eq!(p.vlevel(joint), 5);
        let amp = p.amplitude(joint, 0b10_011);
        assert!((amp.mag2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mkron_builds_two_qubit_identity() {
        let mut p = Package::new();
        let id1 = p.identity(1);
        let id2 = p.mkron(id1, id1);
        let want = p.identity(2);
        // Identity ⊗ identity shares the canonical identity node.
        assert_eq!(id2.node, want.node);
        assert!(close(id2.w, want.w));
    }

    #[test]
    fn conj_transpose_of_unitary_inverts_it() {
        let mut p = Package::new();
        let s = p.single_gate(2, 0, GateKind::S.matrix()).unwrap();
        let sdg = p.conj_transpose(s);
        let prod = p.mul_mm(s, sdg);
        let id = p.identity(2);
        assert_eq!(prod.node, id.node);
        assert!(close(prod.w, id.w));
    }

    #[test]
    fn mul_mm_matches_sequential_application() {
        let mut p = Package::new();
        let v = p.basis_state(2, 0);
        let h0 = p.single_gate(2, 0, GateKind::H.matrix()).unwrap();
        let x1 = p.single_gate(2, 1, GateKind::X.matrix()).unwrap();
        // sequential
        let r_seq = p.apply(h0, v);
        let r_seq = p.apply(x1, r_seq);
        // fused: X1 * H0 (apply H0 first)
        let fused = p.mul_mm(x1, h0);
        let r_fused = p.apply(fused, v);
        assert!((p.fidelity(r_seq, r_fused) - 1.0).abs() < 1e-10);
    }
}

//! State truncation — Section IV-A of the paper, Equation (1).
//!
//! Truncation zeroes the amplitudes passing through a selected set of
//! nodes and rescales the state to unit norm:
//!
//! ```text
//! |ψ_I⟩ = P_I |ψ⟩ / ‖P_I |ψ⟩‖    with    P_I = Σ_{i ∈ I} |i⟩⟨i|
//! ```
//!
//! Node selection is driven by contributions (Definition 2): removing a
//! node loses exactly its contribution in fidelity, and removing a set
//! loses **at most** the sum of their contributions (paths may overlap),
//! so `F(ψ, ψ_I) ≥ 1 − Σ contribution(removed)` — the lower bound the
//! user controls. The *exact* resulting fidelity falls out of the
//! rebuild for free (the kept squared norm) and is reported in
//! [`TruncationResult::fidelity`].

use approxdd_complex::Cplx;

use crate::contribution::ContributionMap;
use crate::edge::{NodeId, VEdge};
use crate::error::DdError;
use crate::fasthash::FxHashMap;
use crate::package::Package;
use crate::Result;

/// How to choose nodes for removal during a truncation round.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RemovalStrategy {
    /// Greedily remove lowest-contribution nodes while the running sum of
    /// removed contributions stays within the budget `1 − f_round`
    /// (i.e. `Budget(b)` guarantees a round fidelity of at least `1 − b`).
    Budget(f64),
    /// Remove every node whose contribution is below the threshold.
    /// The resulting fidelity is bounded below by
    /// `1 − threshold · node_count`, which is only useful for small
    /// thresholds; prefer [`RemovalStrategy::Budget`] for guarantees.
    Threshold(f64),
    /// Remove lowest-contribution nodes until at most this many nodes
    /// would remain (size-targeted, fidelity-unbounded — the dual of
    /// [`RemovalStrategy::Budget`]). The post-rebuild size can fall
    /// below the target because removing a node also drops its
    /// now-unreachable descendants. The root always survives.
    KeepNodes(usize),
}

/// Outcome of one truncation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncationResult {
    /// The truncated, re-normalized state.
    pub edge: VEdge,
    /// Exact fidelity `F(ψ, ψ_I)` between input and output (the kept
    /// squared norm). Always ≥ the strategy's guaranteed lower bound.
    pub fidelity: f64,
    /// Number of nodes selected for removal.
    pub removed_nodes: usize,
    /// Non-terminal node count of the input DD.
    pub size_before: usize,
    /// Non-terminal node count of the output DD.
    pub size_after: usize,
}

impl Package {
    /// Edge-level truncation: zeroes individual *edges* (rather than
    /// whole nodes) in ascending order of their contribution — the
    /// mass `upstream(parent) · |w|²` flowing through the edge — while
    /// the removed total stays within `budget`. Finer-grained than
    /// [`Package::truncate`]: a node's two edges can be kept/cut
    /// independently, which preserves more fidelity per removed DD
    /// path at the cost of (usually) smaller size reductions. One of
    /// the approximation schemes of Zulehner, Hillmich, Markov, Wille
    /// (ASP-DAC 2020), the primitive the reproduced paper builds on.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidParameter`] as for [`Package::truncate`].
    pub fn truncate_edges(&mut self, root: VEdge, budget: f64) -> Result<TruncationResult> {
        if !(0.0..1.0).contains(&budget) {
            return Err(DdError::InvalidParameter {
                reason: "truncation budget must lie in [0, 1)",
            });
        }
        if root.is_zero(self.tolerance()) {
            return Err(DdError::InvalidParameter {
                reason: "cannot truncate the zero state",
            });
        }
        let contribs = self.contributions(root);
        let size_before = contribs.node_count();

        // Contribution of edge (parent, which): upstream(parent)·|w|²
        // (child subtrees have unit norm).
        let mut edges: Vec<(NodeId, u8, f64)> = Vec::new();
        for (node, up) in contribs.iter() {
            let n = *self.vnode(node);
            for (i, e) in n.edges.iter().enumerate() {
                if !e.is_zero(self.tolerance()) {
                    edges.push((node, i as u8, up * e.w.mag2()));
                }
            }
        }
        edges.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap().then(a.0.cmp(&b.0)));

        let mut cut: FxHashMap<(NodeId, u8), ()> = FxHashMap::default();
        let mut spent = 0.0;
        for (node, which, c) in edges {
            if spent + c > budget {
                break;
            }
            spent += c;
            cut.insert((node, which), ());
        }
        if cut.is_empty() {
            return Ok(TruncationResult {
                edge: root,
                fidelity: 1.0,
                removed_nodes: 0,
                size_before,
                size_after: size_before,
            });
        }

        // Rebuild with cut edges zeroed. Memoization must key on the
        // *path-relevant* identity of a node, which here is the node id
        // itself (the cut set is per (node, edge) and applies on every
        // path reaching the node).
        let mut memo: FxHashMap<NodeId, VEdge> = FxHashMap::default();
        let rebuilt = self.rebuild_cut_edges(root.node, &cut, &mut memo);
        let kept = rebuilt.w.mag2();
        if kept <= 0.0 || rebuilt.is_zero(self.tolerance()) {
            return Err(DdError::InvalidParameter {
                reason: "edge cut annihilates the entire state",
            });
        }
        let fidelity = kept.min(1.0);
        let edge = VEdge {
            w: root.w * rebuilt.w / Cplx::real(kept.sqrt()),
            node: rebuilt.node,
        };
        let size_after = self.vsize(edge);
        Ok(TruncationResult {
            edge,
            fidelity,
            removed_nodes: cut.len(),
            size_before,
            size_after,
        })
    }

    fn rebuild_cut_edges(
        &mut self,
        node: NodeId,
        cut: &FxHashMap<(NodeId, u8), ()>,
        memo: &mut FxHashMap<NodeId, VEdge>,
    ) -> VEdge {
        if node.is_terminal() {
            return VEdge::ONE;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.vnode(node);
        let mut children = [VEdge::ZERO; 2];
        for (i, c) in n.edges.iter().enumerate() {
            if c.is_zero(self.tolerance()) || cut.contains_key(&(node, i as u8)) {
                continue;
            }
            let sub = self.rebuild_cut_edges(c.node, cut, memo);
            children[i] = sub.scaled(c.w);
        }
        let e = self.make_vnode(n.var, children[0], children[1]);
        memo.insert(node, e);
        e
    }

    /// Performs one truncation round on a unit-norm state.
    ///
    /// Computes contributions, selects nodes per `strategy`, rebuilds the
    /// DD with selected nodes replaced by the zero stub, and rescales to
    /// unit norm (Equation 1). If nothing is selected the input is
    /// returned unchanged with fidelity 1.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidParameter`] if the budget/threshold is not in
    /// `[0, 1)`, or if the input is the zero edge.
    pub fn truncate(&mut self, root: VEdge, strategy: RemovalStrategy) -> Result<TruncationResult> {
        match strategy {
            RemovalStrategy::Budget(b) if !(0.0..1.0).contains(&b) => {
                return Err(DdError::InvalidParameter {
                    reason: "truncation budget must lie in [0, 1)",
                });
            }
            RemovalStrategy::Threshold(t) if !(0.0..1.0).contains(&t) => {
                return Err(DdError::InvalidParameter {
                    reason: "truncation threshold must lie in [0, 1)",
                });
            }
            RemovalStrategy::KeepNodes(0) => {
                return Err(DdError::InvalidParameter {
                    reason: "must keep at least one node",
                });
            }
            _ => {}
        }
        if root.is_zero(self.tolerance()) {
            return Err(DdError::InvalidParameter {
                reason: "cannot truncate the zero state",
            });
        }
        let contribs = self.contributions(root);
        let removal = select_nodes(&contribs, root.node, strategy);
        self.truncate_with_set(root, &contribs, &removal)
    }

    /// Performs one truncation round removing exactly the given node set
    /// (which must not contain the root). Exposed for custom selection
    /// policies and for the test-suite.
    ///
    /// # Errors
    ///
    /// [`DdError::InvalidParameter`] if the set contains the root or if
    /// removal would annihilate the entire state.
    pub fn truncate_nodes(&mut self, root: VEdge, nodes: &[NodeId]) -> Result<TruncationResult> {
        let contribs = self.contributions(root);
        let set: FxHashMap<NodeId, ()> = nodes.iter().map(|n| (*n, ())).collect();
        if set.contains_key(&root.node) {
            return Err(DdError::InvalidParameter {
                reason: "cannot remove the root node",
            });
        }
        self.truncate_with_set(root, &contribs, &set)
    }

    fn truncate_with_set(
        &mut self,
        root: VEdge,
        contribs: &ContributionMap,
        removal: &FxHashMap<NodeId, ()>,
    ) -> Result<TruncationResult> {
        let size_before = contribs.node_count();
        if removal.is_empty() {
            return Ok(TruncationResult {
                edge: root,
                fidelity: 1.0,
                removed_nodes: 0,
                size_before,
                size_after: size_before,
            });
        }

        let mut memo: FxHashMap<NodeId, VEdge> = FxHashMap::default();
        let rebuilt = self.rebuild_without(root.node, removal, &mut memo);
        // Kept squared norm = |rebuilt.w|² (the input subtree had unit
        // norm); this *is* the exact round fidelity.
        let kept = rebuilt.w.mag2();
        if kept <= 0.0 || rebuilt.is_zero(self.tolerance()) {
            return Err(DdError::InvalidParameter {
                reason: "removal set annihilates the entire state",
            });
        }
        let fidelity = kept.min(1.0);
        // Rescale to unit norm, preserving the phase of the original root
        // weight (Equation 1 rescales by the positive real norm).
        let new_w = root.w * rebuilt.w / Cplx::real(kept.sqrt());
        let edge = VEdge {
            w: new_w,
            node: rebuilt.node,
        };
        let size_after = self.vsize(edge);
        Ok(TruncationResult {
            edge,
            fidelity,
            removed_nodes: removal.len(),
            size_before,
            size_after,
        })
    }

    fn rebuild_without(
        &mut self,
        node: NodeId,
        removal: &FxHashMap<NodeId, ()>,
        memo: &mut FxHashMap<NodeId, VEdge>,
    ) -> VEdge {
        if node.is_terminal() {
            return VEdge::ONE;
        }
        if removal.contains_key(&node) {
            return VEdge::ZERO;
        }
        if let Some(&e) = memo.get(&node) {
            return e;
        }
        let n = *self.vnode(node);
        let mut children = [VEdge::ZERO; 2];
        for (i, c) in n.edges.iter().enumerate() {
            if c.is_zero(self.tolerance()) {
                continue;
            }
            let sub = self.rebuild_without(c.node, removal, memo);
            children[i] = sub.scaled(c.w);
        }
        let e = self.make_vnode(n.var, children[0], children[1]);
        memo.insert(node, e);
        e
    }
}

/// Selects nodes according to the strategy; never selects the root.
fn select_nodes(
    contribs: &ContributionMap,
    root: NodeId,
    strategy: RemovalStrategy,
) -> FxHashMap<NodeId, ()> {
    let mut set: FxHashMap<NodeId, ()> = FxHashMap::default();
    match strategy {
        RemovalStrategy::Budget(budget) => {
            let mut spent = 0.0;
            for (node, c) in contribs.sorted_ascending() {
                if node == root {
                    continue;
                }
                if spent + c > budget {
                    break;
                }
                spent += c;
                set.insert(node, ());
            }
        }
        RemovalStrategy::Threshold(t) => {
            for (node, c) in contribs.iter() {
                if node != root && c < t {
                    set.insert(node, ());
                }
            }
        }
        RemovalStrategy::KeepNodes(target) => {
            let total = contribs.node_count();
            if total > target {
                let mut to_remove = total - target;
                for (node, _) in contribs.sorted_ascending() {
                    if to_remove == 0 {
                        break;
                    }
                    if node == root {
                        continue;
                    }
                    set.insert(node, ());
                    to_remove -= 1;
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1a state of the paper.
    fn paper_state(p: &mut Package) -> VEdge {
        let s = 10f64.sqrt().recip();
        let amps = [s, 0.0, 0.0, -s, 0.0, 2.0 * s, 0.0, 2.0 * s].map(Cplx::real);
        p.from_amplitudes(&amps).unwrap()
    }

    #[test]
    fn paper_example8_removing_left_q1_node() {
        // Removing the q1 node with contribution 0.2 yields the Fig. 1c/d
        // state (|101> + |111>)/√2 with fidelity 0.8.
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let cm = p.contributions(root);
        let victim = cm
            .level(1)
            .iter()
            .copied()
            .find(|n| (cm.contribution(*n) - 0.2).abs() < 1e-9)
            .expect("left q1 node with contribution 0.2");
        let r = p.truncate_nodes(root, &[victim]).unwrap();
        assert!((r.fidelity - 0.8).abs() < 1e-12);
        let amps = p.to_amplitudes(r.edge, 3).unwrap();
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!((amps[0b101].mag() - inv_sqrt2).abs() < 1e-12);
        assert!((amps[0b111].mag() - inv_sqrt2).abs() < 1e-12);
        for i in [0usize, 1, 2, 3, 4, 6] {
            assert!(amps[i].mag2() < 1e-12, "amp {i} should be zeroed");
        }
        assert!(r.size_after < r.size_before);
    }

    #[test]
    fn budget_guarantees_fidelity_lower_bound() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        for budget in [0.0, 0.05, 0.1, 0.25, 0.5] {
            let r = p.truncate(root, RemovalStrategy::Budget(budget)).unwrap();
            assert!(
                r.fidelity >= 1.0 - budget - 1e-12,
                "budget {budget}: fidelity {} below bound",
                r.fidelity
            );
            // The output is unit norm.
            assert!((r.edge.w.mag() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn truncated_state_fidelity_matches_inner_product() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        p.inc_ref(root);
        let r = p.truncate(root, RemovalStrategy::Budget(0.25)).unwrap();
        let measured = p.fidelity(root, r.edge);
        assert!(
            (measured - r.fidelity).abs() < 1e-10,
            "reported {} vs measured {}",
            r.fidelity,
            measured
        );
    }

    #[test]
    fn zero_budget_is_identity() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let r = p.truncate(root, RemovalStrategy::Budget(0.0)).unwrap();
        assert_eq!(r.edge, root);
        assert_eq!(r.fidelity, 1.0);
        assert_eq!(r.removed_nodes, 0);
    }

    #[test]
    fn threshold_removes_small_nodes() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        // Threshold 0.15 removes the 0.1-contribution q0 nodes and the
        // 0.2-node's children chain — fidelity drops to 0.8.
        let r = p.truncate(root, RemovalStrategy::Threshold(0.15)).unwrap();
        assert!(r.fidelity >= 0.5);
        assert!(r.removed_nodes >= 1);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        assert!(p.truncate(root, RemovalStrategy::Budget(1.0)).is_err());
        assert!(p.truncate(root, RemovalStrategy::Budget(-0.1)).is_err());
        assert!(p.truncate(root, RemovalStrategy::KeepNodes(0)).is_err());
        assert!(p
            .truncate(VEdge::ZERO, RemovalStrategy::Budget(0.1))
            .is_err());
    }

    #[test]
    fn keep_nodes_hits_the_size_target() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let before = p.vsize(root);
        assert!(before > 3);
        let r = p.truncate(root, RemovalStrategy::KeepNodes(3)).unwrap();
        assert!(r.size_after <= 3, "kept {} nodes", r.size_after);
        assert!(r.fidelity > 0.0);
        assert!((r.edge.w.mag() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn keep_nodes_is_identity_when_already_small() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        let before = p.vsize(root);
        let r = p
            .truncate(root, RemovalStrategy::KeepNodes(before + 10))
            .unwrap();
        assert_eq!(r.edge, root);
        assert_eq!(r.fidelity, 1.0);
    }

    #[test]
    fn cannot_remove_root() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        assert!(p.truncate_nodes(root, &[root.node]).is_err());
    }

    #[test]
    fn edge_truncation_honors_budget_and_matches_measured_fidelity() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        p.inc_ref(root);
        for budget in [0.05, 0.1, 0.25] {
            let r = p.truncate_edges(root, budget).unwrap();
            assert!(
                r.fidelity >= 1.0 - budget - 1e-12,
                "budget {budget}: fidelity {}",
                r.fidelity
            );
            let measured = p.fidelity(root, r.edge);
            assert!((measured - r.fidelity).abs() < 1e-10);
            assert!((r.edge.w.mag() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn edge_truncation_is_finer_than_node_truncation() {
        // On the paper state with budget 0.1 the node strategy can only
        // remove 0.1-contribution *nodes* (zeroing both amplitudes of a
        // branch); the edge strategy can cut a single 0.1-mass edge.
        let mut p = Package::new();
        let root = paper_state(&mut p);
        p.inc_ref(root);
        // Budget slightly above 0.1: the smallest edge contribution is
        // 0.2 · 0.5 = 0.1 + float noise.
        let edge_r = p.truncate_edges(root, 0.11).unwrap();
        assert!(edge_r.removed_nodes >= 1, "at least one edge cut");
        assert!(edge_r.fidelity >= 0.89 - 1e-12);
    }

    #[test]
    fn edge_truncation_rejects_bad_budgets() {
        let mut p = Package::new();
        let root = paper_state(&mut p);
        assert!(p.truncate_edges(root, 1.0).is_err());
        assert!(p.truncate_edges(root, -0.5).is_err());
        assert!(p.truncate_edges(VEdge::ZERO, 0.1).is_err());
    }

    #[test]
    fn lemma1_multiplicativity_of_successive_truncations() {
        // Lemma 1 / Example 6 of the paper: for chained truncations,
        // F(ψ, ψ'') = F(ψ, ψ') · F(ψ', ψ'').
        let mut p = Package::new();
        // Eight amplitudes with distinct pair ratios, so every level-0
        // node is distinct and removable without annihilating the state.
        let raw = [0.1, 0.7, 0.5, 0.45, 0.9, 0.2, 0.3, 0.65];
        let norm: f64 = raw.iter().map(|x| x * x).sum::<f64>().sqrt();
        let amps: Vec<Cplx> = raw.iter().map(|x| Cplx::real(x / norm)).collect();
        let psi = p.from_amplitudes(&amps).unwrap();
        p.inc_ref(psi);

        // Round 1: remove the lowest-contribution level-0 node -> |ψ'>.
        let cm = p.contributions(psi);
        let victim = *cm
            .level(0)
            .iter()
            .min_by(|a, b| {
                cm.contribution(**a)
                    .partial_cmp(&cm.contribution(**b))
                    .unwrap()
            })
            .unwrap();
        let r1 = p.truncate_nodes(psi, &[victim]).unwrap();
        p.inc_ref(r1.edge);
        assert!(r1.fidelity < 1.0);

        // Round 2: remove the lowest-contribution level-0 node of |ψ'>.
        let cm2 = p.contributions(r1.edge);
        let victim2 = *cm2
            .level(0)
            .iter()
            .min_by(|a, b| {
                cm2.contribution(**a)
                    .partial_cmp(&cm2.contribution(**b))
                    .unwrap()
            })
            .unwrap();
        let r2 = p.truncate_nodes(r1.edge, &[victim2]).unwrap();
        assert!(r2.fidelity < 1.0);

        let f_total = p.fidelity(psi, r2.edge);
        let f_rounds = r1.fidelity * r2.fidelity;
        assert!(
            (f_total - f_rounds).abs() < 1e-10,
            "Lemma 1 violated: total {f_total} vs product {f_rounds}"
        );
    }
}

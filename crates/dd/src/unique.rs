//! Per-level, open-addressed unique tables.
//!
//! The unique table is what makes decision diagrams canonical: every
//! `make_vnode`/`make_mnode` call asks it "does a node with these
//! (tolerance-quantized) children already exist?". Earlier revisions
//! answered through a growable `HashMap<Key, u32>` whose keys inlined
//! the full quantized child description (40+ bytes each) and whose
//! entry API costs showed up directly in node-construction profiles.
//!
//! This module stores the canonical nodes the way production DD
//! packages do:
//!
//! * **One table per level.** Nodes at different qubit levels can never
//!   be equal, so each level gets its own bucket array and the level
//!   byte drops out of every key and comparison.
//! * **Open addressing, linear probing.** Buckets are a flat
//!   power-of-two array of `(hash, node id)` pairs probed linearly.
//!   The full key is **not** stored: the node payload already lives in
//!   the arena, so equality is decided by comparing the candidate
//!   node's children against the probe key (the caller supplies the
//!   comparison as a closure over the arena). A 64-bit hash pre-filter
//!   makes full comparisons rare.
//! * **Load-factor-triggered resize.** Past ~70 % occupancy a level
//!   doubles its bucket array and re-seats entries from their stored
//!   hashes — no key re-derivation, no arena access.
//! * **Tombstone deletion.** Garbage collection removes swept nodes by
//!   id; tombstones keep probe chains intact and are recycled by
//!   inserts and dropped wholesale on resize.
//!
//! Unlike the compute caches ([`crate::ctable`]), unique tables are
//! **exact**: an entry is never lost while its node is alive, which is
//! what keeps canonicalization — and therefore results — independent
//! of cache configuration.
//!
//! # Copy-on-write snapshots
//!
//! A table can layer a private delta over a [`FrozenUnique`]: an
//! `Arc`-shared, immutable set of levels built by [`UniqueTable::freeze`].
//! Lookups probe the delta first, then the frozen tier; inserts and
//! removes touch only the delta. The tiers stay key-disjoint by
//! construction — a key that resolves in the frozen tier is returned
//! by lookup and therefore never re-inserted into the delta, and the
//! arena sweep only ever removes delta ids (frozen nodes sit below the
//! arena watermark and are never swept).

use std::sync::Arc;

/// Bucket holding no entry (never a valid node id: the arena refuses to
/// grow that far).
const EMPTY: u32 = u32::MAX;
/// Bucket whose entry was deleted (probe chains continue through it).
const TOMBSTONE: u32 = u32::MAX - 1;

/// Initial bucket count per level (power of two).
const INITIAL_BUCKETS: usize = 64;

/// Numerator/denominator of the maximum load factor (entries +
/// tombstones over buckets) before a level resizes: 7/10.
const MAX_LOAD_NUM: usize = 7;
const MAX_LOAD_DEN: usize = 10;

#[derive(Debug, Clone, Default)]
struct Level {
    /// Stored 64-bit key hashes, parallel to `ids`.
    hashes: Vec<u64>,
    /// Node ids, or the [`EMPTY`]/[`TOMBSTONE`] sentinels.
    ids: Vec<u32>,
    /// Live entries.
    len: usize,
    /// Tombstoned buckets (reclaimed on resize).
    tombstones: usize,
}

impl Level {
    fn with_buckets(buckets: usize) -> Self {
        debug_assert!(buckets.is_power_of_two());
        Self {
            hashes: vec![0; buckets],
            ids: vec![EMPTY; buckets],
            len: 0,
            tombstones: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.ids.len() - 1
    }

    /// Finds the id of the entry with this hash satisfying `eq`, if any.
    #[inline]
    fn lookup(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.ids.is_empty() {
            return None;
        }
        let mask = self.mask();
        #[allow(clippy::cast_possible_truncation)]
        let mut idx = (hash as usize) & mask;
        loop {
            match self.ids[idx] {
                EMPTY => return None,
                TOMBSTONE => {}
                id => {
                    if self.hashes[idx] == hash && eq(id) {
                        return Some(id);
                    }
                }
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts an entry known to be absent (call after a failed
    /// [`Level::lookup`] with the same hash).
    fn insert(&mut self, hash: u64, id: u32) {
        debug_assert!(id < TOMBSTONE, "node id collides with a sentinel");
        if (self.len + self.tombstones + 1) * MAX_LOAD_DEN > self.ids.len() * MAX_LOAD_NUM {
            self.resize();
        }
        let mask = self.mask();
        #[allow(clippy::cast_possible_truncation)]
        let mut idx = (hash as usize) & mask;
        loop {
            match self.ids[idx] {
                EMPTY => break,
                TOMBSTONE => {
                    self.tombstones -= 1;
                    break;
                }
                _ => idx = (idx + 1) & mask,
            }
        }
        self.hashes[idx] = hash;
        self.ids[idx] = id;
        self.len += 1;
    }

    /// Tombstones the entry for `id` under `hash`. Returns whether it
    /// was present.
    fn remove(&mut self, hash: u64, id: u32) -> bool {
        if self.ids.is_empty() {
            return false;
        }
        let mask = self.mask();
        #[allow(clippy::cast_possible_truncation)]
        let mut idx = (hash as usize) & mask;
        loop {
            match self.ids[idx] {
                EMPTY => return false,
                cand => {
                    if cand == id {
                        self.ids[idx] = TOMBSTONE;
                        self.len -= 1;
                        self.tombstones += 1;
                        return true;
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
    }

    /// Rebuilds the bucket array sized to the *live* entry count (4×
    /// headroom), re-seating entries from their stored hashes and
    /// dropping tombstones. Sizing from `len` instead of doubling
    /// blindly keeps delete-heavy churn (GC sweeps) from growing the
    /// table when tombstones, not entries, tripped the load factor.
    fn resize(&mut self) {
        let new_buckets = (self.len * 4).next_power_of_two().max(INITIAL_BUCKETS);
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; new_buckets]);
        let old_ids = std::mem::replace(&mut self.ids, vec![EMPTY; new_buckets]);
        self.tombstones = 0;
        let mask = new_buckets - 1;
        for (hash, id) in old_hashes.into_iter().zip(old_ids) {
            if id == EMPTY || id == TOMBSTONE {
                continue;
            }
            #[allow(clippy::cast_possible_truncation)]
            let mut idx = (hash as usize) & mask;
            while self.ids[idx] != EMPTY {
                idx = (idx + 1) & mask;
            }
            self.hashes[idx] = hash;
            self.ids[idx] = id;
        }
    }
}

/// The immutable frozen tier of a [`UniqueTable`]: the canonical-node
/// index of a snapshot's frozen arena prefix, shared via `Arc`.
#[derive(Debug, Default)]
pub(crate) struct FrozenUnique {
    levels: Vec<Level>,
    len: usize,
}

impl FrozenUnique {
    /// Live entries across all frozen levels.
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

/// A per-level open-addressed unique table (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct UniqueTable {
    /// Immutable shared tier indexing frozen nodes, if any.
    frozen: Option<Arc<FrozenUnique>>,
    levels: Vec<Level>,
}

impl UniqueTable {
    pub(crate) fn new() -> Self {
        Self {
            frozen: None,
            levels: Vec::new(),
        }
    }

    /// An empty delta table layered over a shared frozen tier.
    pub(crate) fn with_frozen(frozen: Arc<FrozenUnique>) -> Self {
        Self {
            frozen: Some(frozen),
            levels: Vec::new(),
        }
    }

    /// Converts this table into a frozen tier. Only a base table can be
    /// frozen (mirrors [`crate::arena::Arena::freeze`]).
    pub(crate) fn freeze(self) -> FrozenUnique {
        assert!(
            self.frozen.is_none(),
            "cannot freeze a unique table layered over an existing snapshot"
        );
        let len = self.levels.iter().map(|l| l.len).sum();
        FrozenUnique {
            levels: self.levels,
            len,
        }
    }

    /// Looks up the node with key-hash `hash` at `var`, deciding full
    /// equality through `eq` (a closure comparing a candidate node's
    /// arena payload against the probe key). Probes the private delta
    /// first, then the frozen tier (the tiers are key-disjoint, so the
    /// order is a performance choice, not a semantic one).
    #[inline]
    pub(crate) fn lookup(
        &self,
        var: u8,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        if let Some(id) = self
            .levels
            .get(usize::from(var))
            .and_then(|level| level.lookup(hash, &mut eq))
        {
            return Some(id);
        }
        self.frozen
            .as_ref()
            .and_then(|f| f.levels.get(usize::from(var)))
            .and_then(|level| level.lookup(hash, &mut eq))
    }

    /// Registers a freshly allocated node (call after a failed
    /// [`UniqueTable::lookup`] with the same `var`/`hash`).
    pub(crate) fn insert(&mut self, var: u8, hash: u64, id: u32) {
        let var = usize::from(var);
        if self.levels.len() <= var {
            self.levels
                .resize_with(var + 1, || Level::with_buckets(INITIAL_BUCKETS));
        }
        self.levels[var].insert(hash, id);
    }

    /// Drops a swept node's entry from the **delta** tier. Returns
    /// whether it was present. Frozen entries are never removed: the
    /// arena sweep stops at the watermark, so a frozen id can never be
    /// handed to this method.
    pub(crate) fn remove(&mut self, var: u8, hash: u64, id: u32) -> bool {
        self.levels
            .get_mut(usize::from(var))
            .is_some_and(|level| level.remove(hash, id))
    }

    /// Live entries across both tiers.
    pub(crate) fn len(&self) -> usize {
        let frozen = self.frozen.as_ref().map_or(0, |f| f.len());
        frozen + self.levels.iter().map(|l| l.len).sum::<usize>()
    }

    /// Total buckets across both tiers.
    pub(crate) fn capacity(&self) -> usize {
        let frozen = self
            .frozen
            .as_ref()
            .map_or(0, |f| f.levels.iter().map(|l| l.ids.len()).sum());
        frozen + self.levels.iter().map(|l| l.ids.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_remove_roundtrip() {
        let mut t = UniqueTable::new();
        assert_eq!(t.lookup(3, 0xABCD, |_| true), None);
        t.insert(3, 0xABCD, 7);
        assert_eq!(t.lookup(3, 0xABCD, |id| id == 7), Some(7));
        // Same hash, different payload: the eq closure rejects it.
        assert_eq!(t.lookup(3, 0xABCD, |_| false), None);
        // Other levels are independent.
        assert_eq!(t.lookup(2, 0xABCD, |_| true), None);
        assert!(t.remove(3, 0xABCD, 7));
        assert!(!t.remove(3, 0xABCD, 7));
        assert_eq!(t.lookup(3, 0xABCD, |_| true), None);
    }

    #[test]
    fn colliding_hashes_coexist() {
        let mut t = UniqueTable::new();
        // Identical hash, distinct nodes: linear probing must keep both.
        t.insert(0, 42, 1);
        t.insert(0, 42, 2);
        assert_eq!(t.lookup(0, 42, |id| id == 1), Some(1));
        assert_eq!(t.lookup(0, 42, |id| id == 2), Some(2));
        assert_eq!(t.len(), 2);
        // Removing one leaves the probe chain intact for the other.
        assert!(t.remove(0, 42, 1));
        assert_eq!(t.lookup(0, 42, |id| id == 2), Some(2));
    }

    #[test]
    fn grows_past_load_factor() {
        let mut t = UniqueTable::new();
        let n = 10_000u32;
        for i in 0..n {
            // Spread-out hashes: multiply by a large odd constant.
            t.insert(0, u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.capacity() >= n as usize);
        for i in 0..n {
            let h = u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(t.lookup(0, h, |id| id == i), Some(i), "entry {i}");
        }
    }

    #[test]
    fn frozen_tier_resolves_after_delta_miss() {
        let mut base = UniqueTable::new();
        base.insert(2, 0x1111, 4);
        base.insert(2, 0x2222, 5);
        let frozen = Arc::new(base.freeze());
        assert_eq!(frozen.len(), 2);

        let mut t = UniqueTable::with_frozen(Arc::clone(&frozen));
        // Frozen entries resolve through the layered table.
        assert_eq!(t.lookup(2, 0x1111, |id| id == 4), Some(4));
        assert_eq!(t.len(), 2);
        // Delta inserts coexist and are probed first.
        t.insert(2, 0x3333, 9);
        assert_eq!(t.lookup(2, 0x3333, |id| id == 9), Some(9));
        assert_eq!(t.len(), 3);
        // Removes only touch the delta: a frozen id is never removable.
        assert!(!t.remove(2, 0x1111, 4));
        assert_eq!(t.lookup(2, 0x1111, |id| id == 4), Some(4));
        assert!(t.remove(2, 0x3333, 9));

        // A second layered table shares the same frozen entries.
        let t2 = UniqueTable::with_frozen(frozen);
        assert_eq!(t2.lookup(2, 0x2222, |id| id == 5), Some(5));
    }

    #[test]
    fn tombstones_are_recycled_by_inserts() {
        let mut t = UniqueTable::new();
        for round in 0..50u32 {
            for i in 0..40u32 {
                t.insert(1, u64::from(i % 8), round * 40 + i);
            }
            for i in 0..40u32 {
                assert!(t.remove(1, u64::from(i % 8), round * 40 + i));
            }
        }
        assert_eq!(t.len(), 0);
        // Churn with only 8 distinct hashes must not balloon capacity:
        // tombstone recycling + resize cleanup keep it bounded.
        assert!(t.capacity() <= 1 << 12, "capacity {}", t.capacity());
    }
}

//! Microbenchmarks of the DD hot path the lossy-cache redesign targets:
//! `add`, `mul_mv` (gate application), `inner_product`, and
//! `sample_counts`, each on GHZ, QFT, and random-Clifford workloads.
//!
//! Circuits are built from `Package` gate primitives directly (the
//! `dd` crate sits below the circuit IR, so depending on the
//! generators would be a dependency cycle). Run with
//! `cargo bench -p approxdd-dd`; CI runs `cargo bench -p approxdd-dd
//! -- --test` as a smoke pass so the harness cannot rot.

use criterion::{criterion_group, criterion_main, Criterion};

use approxdd_complex::Cplx;
use approxdd_dd::{GateKind, Package, VEdge};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// |GHZ_n⟩ = (|0…0⟩ + |1…1⟩)/√2 via H(0) then a CX ladder.
fn ghz_state(p: &mut Package, n: usize) -> VEdge {
    let mut state = p.zero_state(n);
    let h = p.single_gate(n, 0, GateKind::H.matrix()).expect("H");
    state = p.apply(h, state);
    for k in 1..n {
        let cx = p
            .controlled_gate(n, &[k - 1], k, GateKind::X.matrix())
            .expect("CX");
        state = p.apply(cx, state);
    }
    state
}

/// QFT of a skewed basis state: H plus controlled-phase cascades.
fn qft_state(p: &mut Package, n: usize) -> VEdge {
    let mut state = p.basis_state(n, 0b1011 & ((1 << n) - 1));
    for target in (0..n).rev() {
        let h = p.single_gate(n, target, GateKind::H.matrix()).expect("H");
        state = p.apply(h, state);
        for (k, control) in (0..target).rev().enumerate() {
            let angle = std::f64::consts::PI / f64::powi(2.0, (k + 1) as i32);
            let cp = p
                .controlled_gate(n, &[control], target, GateKind::Phase(angle).matrix())
                .expect("CP");
            state = p.apply(cp, state);
        }
    }
    state
}

/// A reproducible random-Clifford state: H/S/CX picked by an LCG.
fn clifford_state(p: &mut Package, n: usize, depth: usize, mut seed: u64) -> VEdge {
    let mut state = p.zero_state(n);
    let mut next = move || {
        seed = seed
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (seed >> 33) as usize
    };
    for _ in 0..depth {
        for q in 0..n {
            let gate = match next() % 3 {
                0 => p.single_gate(n, q, GateKind::H.matrix()).expect("H"),
                1 => p.single_gate(n, q, GateKind::S.matrix()).expect("S"),
                _ => {
                    let c = (q + 1 + next() % (n - 1)) % n;
                    p.controlled_gate(n, &[c], q, GateKind::X.matrix())
                        .expect("CX")
                }
            };
            state = p.apply(gate, state);
        }
    }
    state
}

/// The three workloads at a common width.
fn workloads(n: usize) -> Vec<(&'static str, Package, VEdge)> {
    let mut out = Vec::new();
    let mut p = Package::new();
    let s = ghz_state(&mut p, n);
    out.push(("ghz", p, s));
    let mut p = Package::new();
    let s = qft_state(&mut p, n);
    out.push(("qft", p, s));
    let mut p = Package::new();
    let s = clifford_state(&mut p, n, 6, 0xDD);
    out.push(("clifford", p, s));
    out
}

fn bench_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_add");
    for (name, mut p, state) in workloads(12) {
        // A second, structurally different operand at the same level.
        let other = clifford_state(&mut p, 12, 4, 0xA5);
        group.bench_function(format!("{name}_12q"), |b| {
            b.iter(|| std::hint::black_box(p.add(state, other)));
        });
    }
    group.finish();
}

fn bench_mul_mv(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_mul_mv");
    for (name, mut p, state) in workloads(12) {
        let h = p.single_gate(12, 5, GateKind::H.matrix()).expect("H");
        let cz = p
            .controlled_gate(12, &[3], 8, GateKind::Z.matrix())
            .expect("CZ");
        group.bench_function(format!("{name}_h_12q"), |b| {
            b.iter(|| std::hint::black_box(p.apply(h, state)));
        });
        group.bench_function(format!("{name}_cz_12q"), |b| {
            b.iter(|| std::hint::black_box(p.apply(cz, state)));
        });
    }
    group.finish();
}

fn bench_inner(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_inner");
    for (name, mut p, state) in workloads(12) {
        let other = clifford_state(&mut p, 12, 4, 0xA5);
        group.bench_function(format!("{name}_12q"), |b| {
            b.iter(|| std::hint::black_box(p.inner_product(state, other)));
        });
        group.bench_function(format!("{name}_norm_12q"), |b| {
            b.iter(|| std::hint::black_box(p.inner_product(state, state)));
        });
    }
    group.finish();
}

fn bench_sample_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sample_counts");
    for (name, p, state) in workloads(12) {
        // Sampling needs a unit-norm root; normalize defensively (the
        // workload builders already produce unit-norm states).
        let root = VEdge {
            w: state.w * Cplx::real(1.0 / state.w.mag().max(f64::MIN_POSITIVE)),
            node: state.node,
        };
        group.bench_function(format!("{name}_1024shots_12q"), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| std::hint::black_box(p.sample_counts(root, 1024, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_add,
    bench_mul_mv,
    bench_inner,
    bench_sample_counts
);
criterion_main!(benches);

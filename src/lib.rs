//! # approxdd — approximate DD-based quantum circuit simulation
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"As Accurate as Needed, as Efficient as Possible: Approximations in
//! DD-based Quantum Circuit Simulation"* (Hillmich, Kueng, Markov,
//! Wille — DATE 2021).
//!
//! The workspace pieces:
//!
//! * [`complex`] — complex arithmetic with tolerance-aware comparison,
//! * [`dd`] — the decision-diagram engine (states, gates, contribution
//!   analysis, truncation, GC),
//! * [`circuit`] — circuit IR, builders and benchmark generators,
//! * [`statevector`] — the dense-array baseline simulator,
//! * [`sim`] — the approximate simulator, its [`sim::SimulatorBuilder`],
//!   and the composable [`sim::ApproxPolicy`] / [`sim::SimObserver`]
//!   seam (memory-driven, fidelity-driven and budget policies ship
//!   built in; custom policies plug into the same loop),
//! * [`backend`] — the unified [`backend::Backend`] execution API over
//!   both engines (prepare / run / batched runs / sampling / queries),
//! * [`exec`] — the multi-threaded [`exec::BackendPool`]: batched runs
//!   and sharded sampling across worker threads, deterministic under
//!   any worker count,
//! * [`stabilizer`] — the Aaronson–Gottesman tableau engine for
//!   Clifford circuits (exact global phase, polynomial time), behind
//!   `backend::StabilizerBackend` / `backend::HybridBackend`,
//! * [`noise`] — stochastic noise-trajectory simulation: Kraus
//!   channels ([`circuit::noise`]), a pooled Monte-Carlo trajectory
//!   driver ([`noise::NoisePool`]), and an exact density-matrix
//!   baseline for validation,
//! * [`server`] — simulation as a service: a std-only HTTP job
//!   server with bounded-queue admission, warm snapshot sessions and
//!   NDJSON result streaming over the pool,
//! * [`telemetry`] — the metrics plane: a lock-free metrics registry,
//!   phase-timing spans on the hot seams, Prometheus text exposition
//!   (`GET /metrics` on the server) and NDJSON snapshots for the
//!   bench bins; strictly fingerprint-excluded,
//! * [`shor`] — Shor's algorithm end-to-end.
//!
//! # Quickstart
//!
//! Configure a simulator with the fluent builder, run, and sample with
//! the simulator's owned (seeded) RNG:
//!
//! ```
//! use approxdd::circuit::generators;
//! use approxdd::sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = generators::ghz(8);
//! let mut sim = Simulator::builder().seed(1).build();
//! let run = sim.run(&circuit)?;
//! let outcome = sim.draw(&run);
//! assert!(outcome == 0 || outcome == 0xFF);
//! # Ok(())
//! # }
//! ```
//!
//! The same workload through the engine-agnostic [`backend::Backend`]
//! trait, on both engines:
//!
//! ```
//! use approxdd::backend::{amplitudes_of, Backend, BuildBackend, StatevectorBackend};
//! use approxdd::circuit::generators;
//! use approxdd::sim::Simulator;
//!
//! # fn main() -> Result<(), approxdd::backend::ExecError> {
//! let circuit = generators::ghz(8);
//! let mut dd = Simulator::builder().seed(1).build_backend();
//! let mut sv = StatevectorBackend::with_seed(1);
//! let a = amplitudes_of(&mut dd, &circuit)?;
//! let b = amplitudes_of(&mut sv, &circuit)?;
//! for (x, y) in a.iter().zip(&b) {
//!     assert!((*x - *y).mag() < 1e-12);
//! }
//! # Ok(())
//! # }
//! ```

pub use approxdd_backend as backend;
pub use approxdd_circuit as circuit;
pub use approxdd_complex as complex;
pub use approxdd_dd as dd;
pub use approxdd_exec as exec;
pub use approxdd_noise as noise;
pub use approxdd_server as server;
pub use approxdd_shor as shor;
pub use approxdd_sim as sim;
pub use approxdd_stabilizer as stabilizer;
pub use approxdd_statevector as statevector;
pub use approxdd_telemetry as telemetry;

//! # approxdd — approximate DD-based quantum circuit simulation
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"As Accurate as Needed, as Efficient as Possible: Approximations in
//! DD-based Quantum Circuit Simulation"* (Hillmich, Kueng, Markov,
//! Wille — DATE 2021).
//!
//! The workspace pieces:
//!
//! * [`complex`] — complex arithmetic with tolerance-aware comparison,
//! * [`dd`] — the decision-diagram engine (states, gates, contribution
//!   analysis, truncation, GC),
//! * [`circuit`] — circuit IR, builders and benchmark generators,
//! * [`statevector`] — the dense-array baseline simulator,
//! * [`sim`] — the approximate simulator (memory-driven and
//!   fidelity-driven strategies),
//! * [`shor`] — Shor's algorithm end-to-end.
//!
//! # Quickstart
//!
//! ```
//! use approxdd::circuit::generators;
//! use approxdd::sim::{SimOptions, Simulator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = generators::ghz(8);
//! let mut sim = Simulator::new(SimOptions::default());
//! let run = sim.run(&circuit)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = sim.sample(&run, &mut rng);
//! assert!(outcome == 0 || outcome == 0xFF);
//! # Ok(())
//! # }
//! ```

pub use approxdd_circuit as circuit;
pub use approxdd_complex as complex;
pub use approxdd_dd as dd;
pub use approxdd_shor as shor;
pub use approxdd_sim as sim;
pub use approxdd_statevector as statevector;
